// Tests for the serial linear-algebra kernels: multiplication variants
// against each other and hand values, LU factorization (unblocked and
// blocked) against reconstruction and solves, array ops, and flop counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "linalg/block_lu.hpp"
#include "linalg/kernels.hpp"
#include "linalg/real_source.hpp"

namespace fpm::linalg {
namespace {

TEST(MatmulNaive, HandComputedProduct) {
  MatrixD a(2, 2), b(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  const MatrixD c = matmul_naive(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatmulNaive, RejectsMismatchedShapes) {
  EXPECT_THROW(matmul_naive(MatrixD(2, 3), MatrixD(2, 3)),
               std::invalid_argument);
}

TEST(MatmulBlocked, MatchesNaiveOnRandomRectangles) {
  for (const auto [m, k, n] :
       {std::tuple{5, 7, 3}, {48, 48, 48}, {50, 33, 65}, {1, 100, 1}}) {
    const MatrixD a = random_matrix(m, k, 1);
    const MatrixD b = random_matrix(k, n, 2);
    const MatrixD c1 = matmul_naive(a, b);
    const MatrixD c2 = matmul_blocked(a, b, 16);
    EXPECT_LT(util::max_abs_diff(c1, c2), 1e-10) << m << "x" << k << "x" << n;
  }
}

TEST(MatmulBlocked, RejectsZeroBlock) {
  EXPECT_THROW(matmul_blocked(MatrixD(2, 2), MatrixD(2, 2), 0),
               std::invalid_argument);
}

TEST(MatmulAbt, EqualsNaiveAgainstTransposedB) {
  const MatrixD a = random_matrix(20, 30, 3);
  const MatrixD b = random_matrix(15, 30, 4);  // B is n x k; A·Bᵀ is 20 x 15
  const MatrixD c1 = matmul_abt_naive(a, b);
  const MatrixD c2 = matmul_naive(a, b.transposed());
  EXPECT_LT(util::max_abs_diff(c1, c2), 1e-12);
}

TEST(LuFactor, ReconstructsPA) {
  for (const std::size_t n : {1u, 2u, 5u, 17u, 40u}) {
    MatrixD a = random_matrix(n, n, 100 + n);
    const MatrixD original = a;
    std::vector<std::size_t> pivots;
    ASSERT_TRUE(lu_factor(a, pivots));
    const MatrixD lu_prod = lu_reconstruct(a);
    const MatrixD pa = apply_pivots(original, pivots);
    EXPECT_LT(util::max_abs_diff(lu_prod, pa), 1e-9) << "n=" << n;
  }
}

TEST(LuFactor, RectangularTallAndWide) {
  for (const auto [m, n] : {std::pair{12u, 5u}, {5u, 12u}}) {
    MatrixD a = random_matrix(m, n, 55);
    const MatrixD original = a;
    std::vector<std::size_t> pivots;
    ASSERT_TRUE(lu_factor(a, pivots));
    EXPECT_LT(util::max_abs_diff(lu_reconstruct(a),
                                 apply_pivots(original, pivots)),
              1e-9);
  }
}

TEST(LuFactor, DetectsExactSingularity) {
  MatrixD a(3, 3);  // an all-zero column
  a(0, 0) = 1.0;
  a(1, 1) = 0.0;
  a(2, 2) = 1.0;
  std::vector<std::size_t> pivots;
  EXPECT_FALSE(lu_factor(a, pivots));
}

TEST(LuSolve, RecoversKnownSolution) {
  const std::size_t n = 25;
  MatrixD a = random_matrix(n, n, 77);
  const MatrixD original = a;
  std::vector<double> x_true(n);
  for (std::size_t i = 0; i < n; ++i) x_true[i] = std::sin(double(i) + 1.0);
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) b[i] += original(i, j) * x_true[j];
  std::vector<std::size_t> pivots;
  ASSERT_TRUE(lu_factor(a, pivots));
  const std::vector<double> x = lu_solve(a, pivots, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(LuSolve, RejectsShapeMismatch) {
  MatrixD a = random_matrix(4, 4, 1);
  std::vector<std::size_t> pivots;
  ASSERT_TRUE(lu_factor(a, pivots));
  EXPECT_THROW(lu_solve(a, pivots, std::vector<double>(3)),
               std::invalid_argument);
}

TEST(BlockLu, BitIdenticalToUnblocked) {
  for (const std::size_t n : {1u, 7u, 16u, 33u, 64u}) {
    for (const std::size_t b : {1u, 4u, 8u, 16u}) {
      MatrixD a1 = random_matrix(n, n, 300 + n);
      MatrixD a2 = a1;
      std::vector<std::size_t> p1, p2;
      ASSERT_TRUE(lu_factor(a1, p1));
      ASSERT_TRUE(block_lu_factor(a2, b, p2));
      EXPECT_EQ(p1, p2) << "n=" << n << " b=" << b;
      EXPECT_DOUBLE_EQ(util::max_abs_diff(a1, a2), 0.0)
          << "n=" << n << " b=" << b;
    }
  }
}

TEST(BlockLu, RectangularMatchesUnblocked) {
  MatrixD a1 = random_matrix(30, 18, 9);
  MatrixD a2 = a1;
  std::vector<std::size_t> p1, p2;
  ASSERT_TRUE(lu_factor(a1, p1));
  ASSERT_TRUE(block_lu_factor(a2, 8, p2));
  EXPECT_EQ(p1, p2);
  EXPECT_LT(util::max_abs_diff(a1, a2), 1e-12);
}

TEST(BlockLu, RejectsZeroBlock) {
  MatrixD a = random_matrix(4, 4, 1);
  std::vector<std::size_t> pivots;
  EXPECT_THROW(block_lu_factor(a, 0, pivots), std::invalid_argument);
}

TEST(ArrayOps, DeterministicChecksum) {
  std::vector<double> d1(100, 1.0), d2(100, 1.0);
  EXPECT_DOUBLE_EQ(array_ops(d1, 3), array_ops(d2, 3));
  EXPECT_NE(array_ops(d1, 1), 0.0);
}

TEST(Flops, CountsMatchConventions) {
  EXPECT_DOUBLE_EQ(mm_flops(10, 20, 30), 12000.0);
  // LU of an n x n matrix ~ (2/3)n³ to leading order.
  const double n = 400.0;
  EXPECT_NEAR(lu_flops(400, 400), (2.0 / 3.0) * n * n * n,
              0.02 * (2.0 / 3.0) * n * n * n);
  EXPECT_DOUBLE_EQ(array_ops_flops(1000, 4), 8000.0);
}

TEST(RandomMatrix, DeterministicAndInRange) {
  const MatrixD a = random_matrix(6, 6, 42);
  const MatrixD b = random_matrix(6, 6, 42);
  EXPECT_DOUBLE_EQ(util::max_abs_diff(a, b), 0.0);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      if (i != j) EXPECT_LE(std::abs(a(i, j)), 1.0);
}

TEST(RealSource, MeasuresPositiveSpeeds) {
  RealKernelSource mm(Kernel::MatMulNaive);
  EXPECT_GT(mm.measure(3.0 * 64 * 64), 0.0);
  RealKernelSource lu(Kernel::LuFactor);
  EXPECT_GT(lu.measure(64.0 * 64.0), 0.0);
  RealKernelSource arr(Kernel::ArrayOps);
  EXPECT_GT(arr.measure(10000.0), 0.0);
  EXPECT_EQ(mm.name(), "MatrixMult");
  EXPECT_EQ(lu.name(), "LU");
}

TEST(RealSource, BlockedBeatsNaiveOnLargeEnoughMatrices) {
  // The two kernels embody the paper's efficient/inefficient dichotomy; on
  // modern hosts with large caches they can tie at 200x200, and shared CI
  // wall clocks are noisy. Keep this as a loose regression guard (blocked
  // must not be *wildly* slower) with best-of-five sampling; the real
  // cache-behaviour study lives in bench/kernels_host.
  double naive = 0.0, blocked = 0.0;
  for (int i = 0; i < 5; ++i) {
    naive = std::max(naive, measure_mm_mflops(200, 200, /*blocked=*/false));
    blocked = std::max(blocked, measure_mm_mflops(200, 200, /*blocked=*/true));
  }
  EXPECT_GT(blocked, naive * 0.3);
}

}  // namespace
}  // namespace fpm::linalg
