// Unit tests for the internal bracketing-search layer shared by the three
// partitioning algorithms (core/detail/search_state): bracket invariants,
// interior-candidate counting, convergence detection, and the semantics of
// one basic and one modified step.
#include <gtest/gtest.h>

#include "core/detail/search_state.hpp"
#include "helpers.hpp"

namespace fpm::core::detail {
namespace {

TEST(SearchState, InitialBracketStraddlesN) {
  const auto e = fpm::test::power_ensemble(4);
  const std::int64_t n = 1000000;
  SearchState state(e.list(), n);
  double small_sum = 0.0, large_sum = 0.0;
  for (const double x : state.small()) small_sum += x;
  for (const double x : state.large()) large_sum += x;
  EXPECT_LE(small_sum, static_cast<double>(n) * (1.0 + 1e-12));
  EXPECT_GE(large_sum, static_cast<double>(n) * (1.0 - 1e-12));
  EXPECT_LE(state.lo_slope(), state.hi_slope());
  EXPECT_EQ(state.intersections(), 8);  // two lines, four curves
  EXPECT_EQ(state.iterations(), 0);
}

TEST(SearchState, InteriorCountsMatchBrackets) {
  const auto e = fpm::test::linear_ensemble(3);
  SearchState state(e.list(), 100000);
  for (std::size_t i = 0; i < 3; ++i) {
    const double lo = state.small()[i];
    const double hi = state.large()[i];
    // Count integers k with lo < k <= hi by brute force.
    std::int64_t expected = 0;
    for (std::int64_t k = static_cast<std::int64_t>(lo);
         k <= static_cast<std::int64_t>(hi) + 1; ++k)
      if (static_cast<double>(k) > lo && static_cast<double>(k) <= hi)
        ++expected;
    EXPECT_EQ(state.interior_count(i), expected) << i;
  }
  std::int64_t total = 0;
  for (std::size_t i = 0; i < 3; ++i) total += state.interior_count(i);
  EXPECT_EQ(state.total_interior(), total);
}

TEST(SearchState, StepsShrinkTheBracket) {
  const auto e = fpm::test::unimodal_ensemble(4);
  SearchState state(e.list(), 500000);
  const double width0 = state.hi_slope() - state.lo_slope();
  state.step_basic(true);
  const double width1 = state.hi_slope() - state.lo_slope();
  EXPECT_LT(width1, width0);
  EXPECT_EQ(state.iterations(), 1);
  state.step_modified();
  const double width2 = state.hi_slope() - state.lo_slope();
  EXPECT_LE(width2, width1);
  EXPECT_EQ(state.iterations(), 2);
}

TEST(SearchState, StepPreservesBracketInvariant) {
  const auto e = fpm::test::stepped_ensemble(5);
  const std::int64_t n = 3000000;
  SearchState state(e.list(), n);
  for (int it = 0; it < 30 && !state.converged(); ++it) {
    if (it % 2 == 0)
      state.step_basic(false);
    else
      state.step_modified();
    double small_sum = 0.0, large_sum = 0.0;
    for (const double x : state.small()) small_sum += x;
    for (const double x : state.large()) large_sum += x;
    ASSERT_LE(small_sum, static_cast<double>(n) * (1.0 + 1e-9)) << it;
    ASSERT_GE(large_sum, static_cast<double>(n) * (1.0 - 1e-9)) << it;
    ASSERT_LE(state.lo_slope(), state.hi_slope()) << it;
  }
}

TEST(SearchState, ConvergedMeansNoInteriorIntegers) {
  const auto e = fpm::test::power_ensemble(3);
  SearchState state(e.list(), 250000);
  int guard = 0;
  while (!state.converged() && ++guard < 10000) state.step_basic(true);
  ASSERT_TRUE(state.converged());
  for (std::size_t i = 0; i < 3; ++i) {
    // No integer strictly inside (small[i], large[i]).
    const double lo = state.small()[i];
    const double hi = state.large()[i];
    for (std::int64_t k = static_cast<std::int64_t>(lo);
         k <= static_cast<std::int64_t>(hi) + 1; ++k)
      EXPECT_FALSE(static_cast<double>(k) > lo && static_cast<double>(k) < hi)
          << "integer " << k << " inside bracket of " << i;
  }
}

TEST(SearchState, ModifiedStepHalvesTheChosenGraphsCandidates) {
  const auto e = fpm::test::linear_ensemble(2);
  SearchState state(e.list(), 777777);
  // Find the graph with the most candidates, take one modified step, and
  // verify its candidate count dropped to about half.
  std::size_t target = state.interior_count(0) >= state.interior_count(1) ? 0 : 1;
  const std::int64_t before = state.interior_count(target);
  state.step_modified();
  const std::int64_t after = state.interior_count(target);
  EXPECT_LE(after, before / 2 + 1);
  EXPECT_GE(after, before / 4);  // the split is near the midpoint, not wild
}

TEST(SearchState, SingleProcessorConvergesImmediatelyOrFast) {
  const auto e = fpm::test::constant_ensemble(1);
  SearchState state(e.list(), 12345);
  int guard = 0;
  while (!state.converged() && ++guard < 100) state.step_basic(true);
  EXPECT_TRUE(state.converged());
  // The single bracket must pin x near n.
  EXPECT_NEAR(state.small()[0], 12345.0, 1.0);
}

}  // namespace
}  // namespace fpm::core::detail
