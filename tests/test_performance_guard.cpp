// Coarse performance guards: the library's headline complexity claims,
// asserted with wall-clock bounds generous enough for slow CI machines but
// tight enough to catch accidental quadratic or worse regressions.
#include <gtest/gtest.h>

#include <memory>

#include "core/fpm.hpp"
#include "util/timer.hpp"

namespace fpm::core {
namespace {

std::vector<std::shared_ptr<const SpeedFunction>> big_pool(std::size_t p) {
  std::vector<std::shared_ptr<const SpeedFunction>> pool;
  pool.reserve(p);
  for (std::size_t i = 0; i < p; ++i) {
    std::vector<SpeedPoint> pts;
    const double scale = 1.0 + 0.3 * static_cast<double>(i % 11);
    pts.push_back({1e4, 300.0 * scale});
    pts.push_back({1e7, 250.0 * scale});
    pts.push_back({5e7 * scale, 200.0 * scale});
    pts.push_back({4e8 * scale, 2.0});
    pool.push_back(std::make_shared<PiecewiseLinearSpeed>(std::move(pts)));
  }
  return pool;
}

TEST(PerformanceGuard, ThousandProcessorsBillionsOfElements) {
  // The Figure-21 regime: the full partition (search + fine-tuning) at
  // p = 1080, n = 2e9 must complete in well under a second. The bound is
  // ~20x the typical time to stay robust on loaded machines.
  const auto pool = big_pool(1080);
  const SpeedList speeds = make_speed_list(pool);
  util::Timer timer;
  const PartitionResult r = partition_combined(speeds, 2'000'000'000);
  const double secs = timer.seconds();
  EXPECT_EQ(r.distribution.total(), 2'000'000'000);
  EXPECT_LT(secs, 2.0) << "partitioning took " << secs << " s";
}

TEST(PerformanceGuard, IterationCountsStayLogarithmic) {
  // Iteration counts (not wall time) are the portable complexity signal:
  // growing n by 1000x on well-behaved curves must add only a bounded
  // number of bisection steps.
  const auto pool = big_pool(64);
  const SpeedList speeds = make_speed_list(pool);
  const int small = partition_combined(speeds, 1'000'000).stats.iterations;
  const int large =
      partition_combined(speeds, 1'000'000'000).stats.iterations;
  EXPECT_LT(large, small + 40);
}

TEST(PerformanceGuard, FineTuneDeficitStaysSmall) {
  // The bisection should hand fine_tune a near-complete allocation: the
  // number of greedily awarded elements is bounded by ~2p, not by n.
  // Verified indirectly: total intersections stay proportional to
  // p * iterations (no hidden per-element work).
  const auto pool = big_pool(256);
  const SpeedList speeds = make_speed_list(pool);
  const PartitionResult r = partition_combined(speeds, 500'000'000);
  EXPECT_LE(r.stats.intersections,
            static_cast<int>(pool.size()) * (r.stats.iterations + 2));
}

}  // namespace
}  // namespace fpm::core
