// Coarse performance guards: the library's headline complexity claims,
// asserted with wall-clock bounds generous enough for slow CI machines but
// tight enough to catch accidental quadratic or worse regressions.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/fpm.hpp"
#include "helpers.hpp"
#include "util/timer.hpp"

namespace fpm::core {
namespace {

std::vector<std::shared_ptr<const SpeedFunction>> big_pool(std::size_t p) {
  std::vector<std::shared_ptr<const SpeedFunction>> pool;
  pool.reserve(p);
  for (std::size_t i = 0; i < p; ++i) {
    std::vector<SpeedPoint> pts;
    const double scale = 1.0 + 0.3 * static_cast<double>(i % 11);
    pts.push_back({1e4, 300.0 * scale});
    pts.push_back({1e7, 250.0 * scale});
    pts.push_back({5e7 * scale, 200.0 * scale});
    pts.push_back({4e8 * scale, 2.0});
    pool.push_back(std::make_shared<PiecewiseLinearSpeed>(std::move(pts)));
  }
  return pool;
}

TEST(PerformanceGuard, ThousandProcessorsBillionsOfElements) {
  // The Figure-21 regime: the full partition (search + fine-tuning) at
  // p = 1080, n = 2e9 must complete in well under a second. The bound is
  // ~20x the typical time to stay robust on loaded machines.
  const auto pool = big_pool(1080);
  const SpeedList speeds = make_speed_list(pool);
  util::Timer timer;
  const PartitionResult r = partition_combined(speeds, 2'000'000'000);
  const double secs = timer.seconds();
  EXPECT_EQ(r.distribution.total(), 2'000'000'000);
  EXPECT_LT(secs, 2.0) << "partitioning took " << secs << " s";
}

TEST(PerformanceGuard, IterationCountsStayLogarithmic) {
  // Iteration counts (not wall time) are the portable complexity signal:
  // growing n by 1000x on well-behaved curves must add only a bounded
  // number of bisection steps.
  const auto pool = big_pool(64);
  const SpeedList speeds = make_speed_list(pool);
  const int small = partition_combined(speeds, 1'000'000).stats.iterations;
  const int large =
      partition_combined(speeds, 1'000'000'000).stats.iterations;
  EXPECT_LT(large, small + 40);
}

TEST(PerformanceGuard, ModifiedIntersectionSolvesWithinPaperBound) {
  // The paper's guarantee for the modified algorithm is O(p^2 * log2 n)
  // intersection solves, *independent of curve shape*. Assert it on the
  // adversarial exponential-decay family (the one that breaks the basic
  // algorithm), measured at the SpeedFunction boundary where every
  // c*x = s(x) solve is counted — bracket expansion, search, and
  // fine-tuning included. C = 8 absorbs the constant factors (the +-2
  // probes per graph and per step) with room to spare.
  constexpr double kC = 8.0;
  for (const std::size_t p : {4u, 8u, 16u}) {
    const fpm::test::Ensemble e = fpm::test::exponential_ensemble(p);
    for (const std::int64_t n :
         {std::int64_t{100'000}, std::int64_t{1'000'000},
          std::int64_t{10'000'000}}) {
      const PartitionResult r = partition_modified(e.list(), n);
      const double pd = static_cast<double>(p);
      const double bound =
          kC * pd * pd * std::log2(static_cast<double>(n));
      EXPECT_LE(static_cast<double>(r.stats.intersect_solves), bound)
          << "p=" << p << " n=" << n;
      EXPECT_EQ(r.distribution.total(), n);
    }
  }
}

TEST(PerformanceGuard, BasicBeatsModifiedOnPolynomialCurves) {
  // The other half of the paper's complexity story: on benign
  // polynomial-slope curves the basic algorithm's O(p log n) search does
  // strictly less intersection work than modified's O(p^2 log2 n).
  // At small n the two searches can tie; the gap must open as n grows
  // (basic adds O(1) steps per decade, modified O(p) per decade).
  const fpm::test::Ensemble e = fpm::test::power_ensemble(12);
  for (const std::int64_t n :
       {std::int64_t{1'000'000}, std::int64_t{100'000'000}}) {
    const PartitionResult basic = partition_basic(e.list(), n);
    const PartitionResult modified = partition_modified(e.list(), n);
    EXPECT_LE(basic.stats.intersect_solves, modified.stats.intersect_solves)
        << "n=" << n;
    if (n >= 100'000'000)
      EXPECT_LT(basic.stats.intersect_solves, modified.stats.intersect_solves)
          << "n=" << n;
    EXPECT_EQ(basic.distribution.total(), n);
    EXPECT_EQ(modified.distribution.total(), n);
  }
}

TEST(PerformanceGuard, FineTuneDeficitStaysSmall) {
  // The bisection should hand fine_tune a near-complete allocation: the
  // number of greedily awarded elements is bounded by ~2p, not by n.
  // Verified indirectly: total intersections stay proportional to
  // p * iterations (no hidden per-element work).
  const auto pool = big_pool(256);
  const SpeedList speeds = make_speed_list(pool);
  const PartitionResult r = partition_combined(speeds, 500'000'000);
  EXPECT_LE(r.stats.intersections,
            static_cast<int>(pool.size()) * (r.stats.iterations + 2));
}

}  // namespace
}  // namespace fpm::core
