// Tests for the observability subsystem (src/obs/metrics.*): registry
// semantics, histogram bucketing, exporter formats, and — under TSan in CI
// — concurrent recording against concurrent snapshotting.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace {

using namespace fpm;

TEST(MetricsRegistry, LookupCreatesOnceAndReturnsStableReferences) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x.count");
  obs::Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3);
  obs::Gauge& g = reg.gauge("x.depth");
  g.set(7);
  EXPECT_EQ(reg.gauge("x.depth").value(), 7);
  obs::Histogram& h = reg.histogram("x.latency");
  h.record(0.5);
  EXPECT_EQ(reg.histogram("x.latency").snapshot().count, 1);
}

TEST(MetricsRegistry, NameCannotChangeKind) {
  obs::MetricsRegistry reg;
  reg.counter("taken");
  EXPECT_THROW(reg.gauge("taken"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("taken"), std::invalid_argument);
  reg.histogram("latency");
  EXPECT_THROW(reg.counter("latency"), std::invalid_argument);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsRegistrations) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("c");
  obs::Gauge& g = reg.gauge("g");
  obs::Histogram& h = reg.histogram("h");
  c.add(5);
  g.set(-2);
  h.record(1.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.snapshot().count, 0);
  // Same references still valid and live.
  c.add(1);
  EXPECT_EQ(reg.counter("c").value(), 1);
}

TEST(Histogram, BucketsAreLogSpacedWithLeSemantics) {
  obs::HistogramOptions opts;
  opts.first_bound = 1.0;
  opts.growth = 2.0;
  opts.buckets = 3;  // bounds 1, 2, 4 (+ overflow)
  obs::Histogram h(opts);
  h.record(0.5);  // <= 1
  h.record(1.0);  // <= 1 (le semantics: lands in its bound's bucket)
  h.record(1.5);  // <= 2
  h.record(4.0);  // <= 4
  h.record(100.0);  // overflow
  h.record(-3.0);   // clamps to zero -> first bucket
  const auto s = h.snapshot();
  ASSERT_EQ(s.bounds.size(), 3u);
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 3);
  EXPECT_EQ(s.counts[1], 1);
  EXPECT_EQ(s.counts[2], 1);
  EXPECT_EQ(s.counts[3], 1);
  EXPECT_EQ(s.count, 6);
  EXPECT_DOUBLE_EQ(s.sum, 0.5 + 1.0 + 1.5 + 4.0 + 100.0);
}

TEST(Histogram, DefaultLayoutCoversMicrosecondsToSeconds) {
  obs::Histogram h;
  const auto s = h.snapshot();
  ASSERT_EQ(s.bounds.size(), 22u);
  EXPECT_DOUBLE_EQ(s.bounds.front(), 1e-6);
  EXPECT_GT(s.bounds.back(), 2.0);  // 1e-6 * 2^21 ~ 2.1 s
}

TEST(TimerSpan, RecordsOnceOnStopOrDestruction) {
  obs::Histogram h;
  {
    obs::TimerSpan span(h);
    const double secs = span.stop();
    EXPECT_GE(secs, 0.0);
    EXPECT_EQ(span.stop(), 0.0);  // disarmed: no second sample
  }  // destructor must not record again
  EXPECT_EQ(h.snapshot().count, 1);
  { obs::TimerSpan span(h); }
  EXPECT_EQ(h.snapshot().count, 2);
}

TEST(Exporters, JsonListsEveryKindAndOverflowBucket) {
  obs::MetricsRegistry reg;
  reg.counter("requests").add(2);
  reg.gauge("depth").set(1);
  obs::HistogramOptions opts;
  opts.buckets = 2;
  reg.histogram("lat", opts).record(1e-7);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"requests\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"depth\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"+Inf\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST(Exporters, PrometheusUsesCumulativeBucketsAndLegalNames) {
  obs::MetricsRegistry reg;
  reg.counter("server.cache.hits").add(4);
  obs::HistogramOptions opts;
  opts.first_bound = 1.0;
  opts.growth = 2.0;
  opts.buckets = 2;  // bounds 1, 2
  obs::Histogram& h = reg.histogram("serve-latency", opts);
  h.record(0.5);
  h.record(1.5);
  h.record(9.0);
  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("# TYPE fpm_server_cache_hits counter"),
            std::string::npos);
  EXPECT_NE(prom.find("fpm_server_cache_hits 4"), std::string::npos);
  // Cumulative: le="1" -> 1, le="2" -> 2, le="+Inf" -> 3.
  EXPECT_NE(prom.find("fpm_serve_latency_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("fpm_serve_latency_bucket{le=\"2\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("fpm_serve_latency_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("fpm_serve_latency_count 3"), std::string::npos);
}

TEST(Catalogue, EveryEntryHasNameKindAndHelp) {
  const auto cat = obs::metric_catalogue();
  EXPECT_GE(cat.size(), 15u);
  for (const obs::MetricInfo& info : cat) {
    EXPECT_NE(info.name, nullptr);
    ASSERT_NE(info.kind, nullptr);
    const std::string kind = info.kind;
    EXPECT_TRUE(kind == "counter" || kind == "gauge" || kind == "histogram")
        << info.name;
    EXPECT_GT(std::string(info.help).size(), 10u) << info.name;
  }
}

// --- concurrency (run under TSan in CI) ---------------------------------

TEST(MetricsConcurrency, ParallelCounterIncrementsAllLand) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&reg] {
      // Mix cached-reference and by-name access: both must be safe.
      obs::Counter& c = reg.counter("hits");
      for (int i = 0; i < kPerThread; ++i) {
        c.add(1);
        if (i % 1024 == 0) reg.counter("hits").add(0);
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter("hits").value(),
            static_cast<std::int64_t>(kThreads) * kPerThread);
}

TEST(MetricsConcurrency, ParallelHistogramRecordsTotalCorrectly) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("lat");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.record(1e-6 * static_cast<double>((t * 31 + i) % 1000));
    });
  for (auto& t : threads) t.join();
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::int64_t>(kThreads) * kPerThread);
  std::int64_t bucket_total = 0;
  for (const std::int64_t c : s.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, s.count);
}

TEST(MetricsConcurrency, SnapshotWhileRecordingIsConsistent) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("lat");
  obs::Counter& c = reg.counter("ops");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t)
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        h.record(1e-5);
        c.add(1);
      }
    });
  // Every observed snapshot must be internally consistent: bucket counts
  // sum to the total, and exporters never crash mid-traffic.
  for (int i = 0; i < 200; ++i) {
    const auto s = h.snapshot();
    std::int64_t bucket_total = 0;
    for (const std::int64_t n : s.counts) bucket_total += n;
    ASSERT_EQ(bucket_total, s.count);
    if (i % 50 == 0) {
      ASSERT_FALSE(reg.to_json().empty());
      ASSERT_FALSE(reg.to_prometheus().empty());
    }
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, c.value());
}

TEST(MetricsConcurrency, ParallelRegistrationOfDistinctNames) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < 100; ++i) {
        reg.counter("c." + std::to_string(t) + "." + std::to_string(i % 10))
            .add(1);
        reg.histogram("h." + std::to_string(t)).record(1e-6);
      }
    });
  for (auto& t : threads) t.join();
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.size(), static_cast<std::size_t>(kThreads) * 10);
  EXPECT_EQ(snap.histograms.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [name, value] : snap.counters) EXPECT_EQ(value, 10) << name;
}

}  // namespace
