// Tests for the Jacobi stencil application: planning, serial/striped
// numeric equivalence, and the halo-aware simulation.
#include <gtest/gtest.h>

#include <numeric>

#include "apps/stencil.hpp"
#include "linalg/kernels.hpp"
#include "simcluster/presets.hpp"

namespace fpm::apps {
namespace {

TEST(StencilPlan, CoversAllRows) {
  auto cluster = sim::make_table2_cluster();
  const core::SpeedList models = cluster.ground_truth_list(sim::kMatMul);
  for (const std::int64_t rows : {12L, 100L, 5000L}) {
    const StencilPlan plan = plan_stencil(models, rows, 4096);
    EXPECT_EQ(std::accumulate(plan.rows.begin(), plan.rows.end(),
                              std::int64_t{0}),
              rows);
    for (const std::int64_t r : plan.rows) EXPECT_GE(r, 0);
  }
}

TEST(StencilPlan, RejectsBadArguments) {
  auto cluster = sim::make_table2_cluster();
  const core::SpeedList models = cluster.ground_truth_list(sim::kMatMul);
  EXPECT_THROW(plan_stencil({}, 10, 10), std::invalid_argument);
  EXPECT_THROW(plan_stencil(models, 0, 10), std::invalid_argument);
  EXPECT_THROW(plan_stencil(models, 10, 0), std::invalid_argument);
}

TEST(JacobiSweep, AveragesNeighbours) {
  util::MatrixD g(3, 3, 0.0);
  g(0, 1) = 4.0;
  g(2, 1) = 8.0;
  g(1, 0) = 12.0;
  g(1, 2) = 16.0;
  const util::MatrixD out = jacobi_sweep(g);
  EXPECT_DOUBLE_EQ(out(1, 1), 10.0);
  // Boundaries unchanged.
  EXPECT_DOUBLE_EQ(out(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(out(2, 1), 8.0);
}

TEST(JacobiSweep, TinyGridsPassThrough) {
  const util::MatrixD g = linalg::random_matrix(2, 5, 3);
  EXPECT_DOUBLE_EQ(util::max_abs_diff(jacobi_sweep(g), g), 0.0);
}

TEST(StripedJacobi, BitIdenticalToSerialSweep) {
  auto cluster = sim::make_table2_cluster();
  const core::SpeedList models = cluster.ground_truth_list(sim::kMatMul);
  for (const std::size_t rows : {13u, 40u, 97u}) {
    const StencilPlan plan =
        plan_stencil(models, static_cast<std::int64_t>(rows), 24);
    const util::MatrixD g = linalg::random_matrix(rows, 24, 11);
    EXPECT_DOUBLE_EQ(
        util::max_abs_diff(striped_jacobi_sweep(g, plan), jacobi_sweep(g)),
        0.0)
        << rows;
  }
}

TEST(StripedJacobi, RejectsMismatchedPlan) {
  auto cluster = sim::make_table2_cluster();
  const core::SpeedList models = cluster.ground_truth_list(sim::kMatMul);
  const StencilPlan plan = plan_stencil(models, 20, 24);
  const util::MatrixD g = linalg::random_matrix(21, 24, 1);
  EXPECT_THROW(striped_jacobi_sweep(g, plan), std::invalid_argument);
}

TEST(StencilSimulation, PositiveAndScalesWithIterations) {
  auto cluster = sim::make_table2_cluster();
  const core::SpeedList models = cluster.ground_truth_list(sim::kMatMul);
  const StencilPlan plan = plan_stencil(models, 8000, 8000);
  const comm::CommModel net =
      comm::CommModel::uniform(cluster.size(), {1e-4, 12.5e6});
  const double t10 =
      simulate_stencil_seconds(cluster, sim::kMatMul, plan, 10, net, false);
  const double t20 =
      simulate_stencil_seconds(cluster, sim::kMatMul, plan, 20, net, false);
  EXPECT_GT(t10, 0.0);
  EXPECT_NEAR(t20, 2.0 * t10, 1e-9 * t20);
  EXPECT_DOUBLE_EQ(
      simulate_stencil_seconds(cluster, sim::kMatMul, plan, 0, net, false),
      0.0);
}

TEST(StencilSimulation, SlowerNetworkCostsMore) {
  auto cluster = sim::make_table2_cluster();
  const core::SpeedList models = cluster.ground_truth_list(sim::kMatMul);
  const StencilPlan plan = plan_stencil(models, 8000, 8000);
  const comm::CommModel fast =
      comm::CommModel::uniform(cluster.size(), {1e-5, 1.25e9});
  const comm::CommModel slow =
      comm::CommModel::uniform(cluster.size(), {1e-3, 1.25e6});
  EXPECT_LT(
      simulate_stencil_seconds(cluster, sim::kMatMul, plan, 5, fast, false),
      simulate_stencil_seconds(cluster, sim::kMatMul, plan, 5, slow, false));
}

TEST(StencilSimulation, FunctionalPlanBeatsEvenRows) {
  auto cluster = sim::make_table2_cluster();
  const core::SpeedList models = cluster.ground_truth_list(sim::kMatMul);
  const std::int64_t rows = 10000, cols = 10000;
  const StencilPlan functional = plan_stencil(models, rows, cols);
  StencilPlan even = functional;
  const core::Distribution d = core::partition_even(rows, cluster.size());
  even.rows = d.counts;
  const comm::CommModel net =
      comm::CommModel::uniform(cluster.size(), {1e-4, 12.5e6});
  EXPECT_LT(simulate_stencil_seconds(cluster, sim::kMatMul, functional, 3,
                                     net, false),
            simulate_stencil_seconds(cluster, sim::kMatMul, even, 3, net,
                                     false));
}

}  // namespace
}  // namespace fpm::apps
