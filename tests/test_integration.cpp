// End-to-end integration tests: the full pipelines a user of the library
// runs, crossing module boundaries — measure → build → persist → load →
// partition → simulate — plus cross-seed stability of the headline
// comparisons that the benches print.
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "apps/lu_app.hpp"
#include "apps/striped_mm.hpp"
#include "apps/vgb.hpp"
#include "core/combined.hpp"
#include "core/model_io.hpp"
#include "simcluster/presets.hpp"

namespace fpm {
namespace {

TEST(Integration, BuildPersistReloadPartitionSimulate) {
  // The fpmtool round trip, in-process.
  auto cluster = sim::make_table2_cluster(99);
  const sim::ClusterModels built =
      sim::build_cluster_models(cluster, sim::kMatMul);

  // Persist all twelve models and reload them.
  std::vector<core::NamedModel> named;
  for (std::size_t i = 0; i < built.curves.size(); ++i)
    named.push_back(core::make_named_model(cluster.machine(i).spec.name,
                                           built.curves[i], 0.08));
  std::stringstream file;
  core::save_models(file, named);
  const auto loaded = core::load_models(file);
  ASSERT_EQ(loaded.size(), 12u);

  std::vector<core::PiecewiseLinearSpeed> curves;
  for (const auto& m : loaded) curves.push_back(m.curve());
  core::SpeedList speeds;
  for (const auto& c : curves) speeds.push_back(&c);

  // Partitioning with the reloaded models matches the in-memory models.
  const std::int64_t n = 50'000'000;
  const core::Distribution from_loaded =
      core::partition_combined(speeds, n).distribution;
  const core::Distribution from_built =
      core::partition_combined(built.list(), n).distribution;
  EXPECT_EQ(from_loaded.counts, from_built.counts);

  // And the distribution is usable for simulation.
  apps::StripedMmPlan plan;
  plan.rows.assign(12, 0);
  plan.rows[0] = 1;  // trivial smoke plan
  EXPECT_GE(apps::simulate_striped_mm_seconds(cluster, sim::kMatMul, plan, 12,
                                              false),
            0.0);
}

class HeadlineAcrossSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeadlineAcrossSeeds, FunctionalModelWinsForPagingSizes) {
  // The paper's core claim must hold for any measurement-noise seed, not
  // just the bench default: at sizes past the paging knees, the functional
  // distribution beats the single-number one for striped MM.
  auto cluster = sim::make_table2_cluster(GetParam());
  const sim::ClusterModels models =
      sim::build_cluster_models(cluster, sim::kMatMul);
  const std::int64_t n = 25000;
  const auto func =
      apps::plan_striped_mm(models.list(), n, apps::ModelKind::Functional);
  const auto single = apps::plan_striped_mm(
      models.list(), n, apps::ModelKind::SingleNumber, 500);
  const double tf =
      apps::simulate_striped_mm_seconds(cluster, sim::kMatMul, func, n, false);
  const double ts = apps::simulate_striped_mm_seconds(cluster, sim::kMatMul,
                                                      single, n, false);
  EXPECT_LT(tf, ts) << "seed " << GetParam();
}

TEST_P(HeadlineAcrossSeeds, VgbWinsForPagingSizes) {
  auto cluster = sim::make_table2_cluster(GetParam());
  const sim::ClusterModels models =
      sim::build_cluster_models(cluster, sim::kLu);
  const std::int64_t n = 24576;
  apps::VgbOptions func;
  func.block = 128;
  apps::VgbOptions single = func;
  single.model = apps::VgbModel::SingleNumber;
  single.reference_n = 2000;
  const auto df = apps::variable_group_block(models.list(), n, func);
  const auto ds = apps::variable_group_block(models.list(), n, single);
  EXPECT_LT(apps::simulate_lu_seconds(cluster, sim::kLu, df, false),
            apps::simulate_lu_seconds(cluster, sim::kLu, ds, false))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeadlineAcrossSeeds,
                         ::testing::Values(1u, 17u, 333u, 4444u),
                         [](const auto& suffix) {
                           return "seed" + std::to_string(suffix.param);
                         });

TEST(Integration, BuiltModelsTrackPagingOnsets) {
  // The built curves must place their speed collapse near the Table-2
  // paging onsets: speed at 2x the onset far below speed at half of it.
  auto cluster = sim::make_table2_cluster(3);
  const sim::ClusterModels models =
      sim::build_cluster_models(cluster, sim::kMatMul);
  for (std::size_t i = 0; i < models.curves.size(); ++i) {
    const double onset = cluster.ground_truth(i, sim::kMatMul).paging_onset();
    const double healthy = models.curves[i].speed(onset * 0.5);
    const double paging = models.curves[i].speed(onset * 2.0);
    EXPECT_LT(paging, 0.3 * healthy) << cluster.machine(i).spec.name;
  }
}

TEST(Integration, GroundTruthVsBuiltPartitionsAgree) {
  // Partitioning with built models must land close to partitioning with
  // the hidden ground truth: makespans (on the truth) within 15%.
  auto cluster = sim::make_table2_cluster(21);
  const sim::ClusterModels models =
      sim::build_cluster_models(cluster, sim::kMatMul);
  const core::SpeedList truth = cluster.ground_truth_list(sim::kMatMul);
  for (const std::int64_t n : {10'000'000LL, 300'000'000LL}) {
    const core::Distribution with_built =
        core::partition_combined(models.list(), n).distribution;
    const core::Distribution with_truth =
        core::partition_combined(truth, n).distribution;
    const double t_built = core::makespan(truth, with_built);
    const double t_truth = core::makespan(truth, with_truth);
    EXPECT_LE(t_built, t_truth * 1.15) << n;
  }
}

TEST(Integration, VgbAndStripedPlansAreSeedStable) {
  // Determinism across identical clusters (same seed).
  auto c1 = sim::make_table2_cluster(5);
  auto c2 = sim::make_table2_cluster(5);
  const auto m1 = sim::build_cluster_models(c1, sim::kLu);
  const auto m2 = sim::build_cluster_models(c2, sim::kLu);
  apps::VgbOptions opts;
  opts.block = 64;
  const auto d1 = apps::variable_group_block(m1.list(), 8192, opts);
  const auto d2 = apps::variable_group_block(m2.list(), 8192, opts);
  EXPECT_EQ(d1.block_owner, d2.block_owner);
  EXPECT_EQ(d1.group_sizes, d2.group_sizes);
}

}  // namespace
}  // namespace fpm
