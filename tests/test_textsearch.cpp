// Tests for the pattern-search application: corpus generation, the search
// kernel, weighted contiguous planning, distributed/serial equivalence,
// and the simulated execution.
#include <gtest/gtest.h>

#include <numeric>

#include "apps/textsearch.hpp"
#include "simcluster/presets.hpp"

namespace fpm::apps {
namespace {

TEST(CountOccurrences, HandCases) {
  EXPECT_EQ(count_occurrences("abcabcab", "abc"), 2u);
  EXPECT_EQ(count_occurrences("aaaa", "aa"), 3u);  // overlapping
  EXPECT_EQ(count_occurrences("xyz", "abc"), 0u);
  EXPECT_EQ(count_occurrences("short", "longer-than-text"), 0u);
  EXPECT_EQ(count_occurrences("anything", ""), 0u);
}

TEST(MakeCorpus, DeterministicAndPatternBearing) {
  const Corpus a = make_corpus(50, 2000, "needle", 42);
  const Corpus b = make_corpus(50, 2000, "needle", 42);
  ASSERT_EQ(a.documents.size(), 50u);
  EXPECT_EQ(a.documents[7], b.documents[7]);
  std::size_t hits = 0;
  for (const std::string& d : a.documents)
    hits += count_occurrences(d, "needle");
  EXPECT_GT(hits, 0u);
  const Corpus c = make_corpus(50, 2000, "needle", 43);
  EXPECT_NE(a.documents[0], c.documents[0]);
}

TEST(MakeCorpus, HeavyTailedLengths) {
  const Corpus corpus = make_corpus(400, 4000, "x", 7);
  std::size_t biggest = 0, smallest = SIZE_MAX;
  for (const std::string& d : corpus.documents) {
    biggest = std::max(biggest, d.size());
    smallest = std::min(smallest, d.size());
  }
  EXPECT_GT(biggest, 8u * smallest);  // real corpora are skewed
}

TEST(MakeCorpus, RejectsDegenerateInput) {
  EXPECT_THROW(make_corpus(0, 2000, "p", 1), std::invalid_argument);
  EXPECT_THROW(make_corpus(5, 4, "longpattern", 1), std::invalid_argument);
}

TEST(PlanSearch, CoversCorpusContiguously) {
  auto cluster = sim::make_table2_cluster();
  const core::SpeedList models = cluster.ground_truth_list(sim::kMatMul);
  const Corpus corpus = make_corpus(300, 5000, "needle", 11);
  const SearchPlan plan = plan_search(models, corpus);
  ASSERT_EQ(plan.boundaries.size(), models.size() + 1);
  EXPECT_EQ(plan.boundaries.front(), 0u);
  EXPECT_EQ(plan.boundaries.back(), corpus.documents.size());
  for (std::size_t i = 0; i + 1 < plan.boundaries.size(); ++i)
    EXPECT_LE(plan.boundaries[i], plan.boundaries[i + 1]);
  const double assigned =
      std::accumulate(plan.bytes.begin(), plan.bytes.end(), 0.0);
  EXPECT_NEAR(assigned, static_cast<double>(corpus.total_bytes()), 1.0);
}

TEST(PlanSearch, RejectsBadInput) {
  auto cluster = sim::make_table2_cluster();
  const core::SpeedList models = cluster.ground_truth_list(sim::kMatMul);
  EXPECT_THROW(plan_search({}, make_corpus(5, 2000, "p", 1)),
               std::invalid_argument);
  EXPECT_THROW(plan_search(models, Corpus{}), std::invalid_argument);
}

TEST(RunSearch, DistributedEqualsSerial) {
  auto cluster = sim::make_table2_cluster();
  const core::SpeedList models = cluster.ground_truth_list(sim::kMatMul);
  const Corpus corpus = make_corpus(120, 3000, "the needle", 23);
  const SearchPlan plan = plan_search(models, corpus);
  std::size_t serial = 0;
  for (const std::string& d : corpus.documents)
    serial += count_occurrences(d, "the needle");
  EXPECT_EQ(run_search(corpus, plan, "the needle"), serial);
  EXPECT_GT(serial, 0u);
}

TEST(RunSearch, RejectsMismatchedPlan) {
  const Corpus corpus = make_corpus(10, 2000, "p", 1);
  SearchPlan bogus;
  bogus.boundaries = {0, 5};  // does not reach the end
  EXPECT_THROW(run_search(corpus, bogus, "p"), std::invalid_argument);
}

TEST(SimulateSearch, FasterMachinesGetMoreBytes) {
  auto cluster = sim::make_table2_cluster();
  const core::SpeedList models = cluster.ground_truth_list(sim::kMatMul);
  const Corpus corpus = make_corpus(500, 20000, "needle", 31);
  const SearchPlan plan = plan_search(models, corpus);
  // X3 (fast bigmem, index 2) outweighs X10 (slow Ultra-5, index 9).
  EXPECT_GT(plan.bytes[2], plan.bytes[9]);
  const double t = simulate_search_seconds(cluster, sim::kMatMul, plan, false);
  EXPECT_GT(t, 0.0);
}

TEST(SimulateSearch, WeightedPlanBeatsEvenDocumentSplit) {
  auto cluster = sim::make_table2_cluster();
  const core::SpeedList models = cluster.ground_truth_list(sim::kMatMul);
  const Corpus corpus = make_corpus(600, 20000, "needle", 77);
  const SearchPlan plan = plan_search(models, corpus);

  // Naive plan: equal *document counts* regardless of sizes or speeds.
  SearchPlan naive;
  const std::size_t p = models.size();
  naive.boundaries.resize(p + 1);
  for (std::size_t i = 0; i <= p; ++i)
    naive.boundaries[i] = i * corpus.documents.size() / p;
  naive.bytes.assign(p, 0.0);
  for (std::size_t i = 0; i < p; ++i)
    for (std::size_t j = naive.boundaries[i]; j < naive.boundaries[i + 1]; ++j)
      naive.bytes[i] += static_cast<double>(corpus.documents[j].size());

  EXPECT_LT(simulate_search_seconds(cluster, sim::kMatMul, plan, false),
            simulate_search_seconds(cluster, sim::kMatMul, naive, false));
}

}  // namespace
}  // namespace fpm::apps
