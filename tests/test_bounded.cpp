// Tests for the general-problem extensions: capacity-bounded partitioning
// and contiguous weighted partitioning.
#include <gtest/gtest.h>

#include "core/bounded.hpp"
#include "helpers.hpp"
#include "util/rng.hpp"

namespace fpm::core {
namespace {

TEST(PartitionBounded, UnbindingBoundsMatchUnbounded) {
  const auto e = fpm::test::power_ensemble(4);
  const std::int64_t n = 100000;
  const std::vector<std::int64_t> loose(4, n);
  const PartitionResult bounded = partition_bounded(e.list(), n, loose);
  const Distribution plain = exact_optimum(e.list(), n);
  EXPECT_EQ(bounded.distribution.total(), n);
  EXPECT_NEAR(makespan(e.list(), bounded.distribution),
              makespan(e.list(), plain),
              0.01 * makespan(e.list(), plain));
}

TEST(PartitionBounded, RespectsEveryBound) {
  const auto e = fpm::test::linear_ensemble(5);
  const std::int64_t n = 50000;
  const std::vector<std::int64_t> bounds{5000, 8000, 30000, 20000, 50000};
  const PartitionResult r = partition_bounded(e.list(), n, bounds);
  EXPECT_EQ(r.distribution.total(), n);
  for (std::size_t i = 0; i < bounds.size(); ++i)
    EXPECT_LE(r.distribution.counts[i], bounds[i]) << i;
}

TEST(PartitionBounded, TightBoundsForceExactFill) {
  const auto e = fpm::test::constant_ensemble(3);
  const std::vector<std::int64_t> bounds{10, 20, 30};
  const PartitionResult r = partition_bounded(e.list(), 60, bounds);
  EXPECT_EQ(r.distribution.counts, (std::vector<std::int64_t>{10, 20, 30}));
}

TEST(PartitionBounded, ThrowsWhenInfeasible) {
  const auto e = fpm::test::constant_ensemble(2);
  const std::vector<std::int64_t> bounds{3, 4};
  EXPECT_THROW(partition_bounded(e.list(), 8, bounds), std::invalid_argument);
  EXPECT_THROW(partition_bounded(e.list(), 8, std::vector<std::int64_t>{-1, 20}),
               std::invalid_argument);
  EXPECT_THROW(partition_bounded(e.list(), 8, std::vector<std::int64_t>{5}),
               std::invalid_argument);
}

TEST(PartitionBounded, NearOptimalAgainstBoundedOracle) {
  for (const auto& e : fpm::test::all_ensembles(4)) {
    const SpeedList speeds = e.list();
    const std::int64_t n = 20000;
    // Bind the two fastest-looking processors tightly.
    std::vector<std::int64_t> bounds{1000, 2000, 20000, 20000};
    const PartitionResult got = partition_bounded(speeds, n, bounds);
    const Distribution best = exact_optimum_bounded(speeds, n, bounds);
    EXPECT_EQ(got.distribution.total(), n) << e.name;
    for (std::size_t i = 0; i < bounds.size(); ++i)
      ASSERT_LE(got.distribution.counts[i], bounds[i]) << e.name;
    // The clamp-and-re-solve heuristic is near-optimal, not exact: allow a
    // modest margin over the true bounded optimum.
    EXPECT_LE(makespan(speeds, got.distribution),
              makespan(speeds, best) * 1.05)
        << e.name;
  }
}

TEST(ExactOptimumBounded, MatchesUnboundedWhenLoose) {
  const auto e = fpm::test::unimodal_ensemble(3);
  const std::int64_t n = 5000;
  const std::vector<std::int64_t> loose(3, n);
  const Distribution a = exact_optimum_bounded(e.list(), n, loose);
  const Distribution b = exact_optimum(e.list(), n);
  EXPECT_EQ(makespan(e.list(), a), makespan(e.list(), b));
}

TEST(ExactOptimumBounded, SaturatesBindingBounds) {
  // One fast processor with a tiny bound: the others must absorb the rest.
  const auto e = fpm::test::constant_ensemble(3);  // speeds 100,150,200
  const std::vector<std::int64_t> bounds{1000000, 1000000, 5};
  const Distribution d = exact_optimum_bounded(e.list(), 1000, bounds);
  EXPECT_EQ(d.total(), 1000);
  EXPECT_LE(d.counts[2], 5);
  EXPECT_EQ(d.counts[2], 5);  // binding: the fast processor fills its bound
}

// ---------------------------------------------------------------------------
// Contiguous weighted partitioning.
// ---------------------------------------------------------------------------

TEST(WeightedContiguous, UniformWeightsMatchUnweightedShares) {
  const auto e = fpm::test::constant_ensemble(3);  // speeds 100,150,200
  const std::vector<double> w(450, 1.0);
  const auto b = partition_weighted_contiguous(e.list(), w);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b.front(), 0u);
  EXPECT_EQ(b.back(), w.size());
  // Shares proportional to 100:150:200 = 100,150,200 elements.
  EXPECT_NEAR(static_cast<double>(b[1] - b[0]), 100.0, 2.0);
  EXPECT_NEAR(static_cast<double>(b[2] - b[1]), 150.0, 2.0);
  EXPECT_NEAR(static_cast<double>(b[3] - b[2]), 200.0, 2.0);
}

TEST(WeightedContiguous, CoversEveryElementExactlyOnce) {
  const auto e = fpm::test::linear_ensemble(4);
  util::Rng rng(5);
  std::vector<double> w(1000);
  for (double& x : w) x = rng.uniform(0.1, 10.0);
  const auto b = partition_weighted_contiguous(e.list(), w);
  ASSERT_EQ(b.size(), 5u);
  EXPECT_EQ(b.front(), 0u);
  EXPECT_EQ(b.back(), w.size());
  for (std::size_t i = 0; i + 1 < b.size(); ++i) EXPECT_LE(b[i], b[i + 1]);
}

TEST(WeightedContiguous, BalancesHeavyPrefix) {
  // Heavy elements first: the first processor must receive fewer elements
  // than under uniform weights.
  const auto e = fpm::test::constant_ensemble(2);  // speeds 100,150
  std::vector<double> w(200, 1.0);
  for (std::size_t j = 0; j < 50; ++j) w[j] = 20.0;
  const auto b = partition_weighted_contiguous(e.list(), w);
  const std::vector<double> uniform(200, 1.0);
  const auto bu = partition_weighted_contiguous(e.list(), uniform);
  EXPECT_LT(b[1], bu[1]);
}

TEST(WeightedContiguous, MakespanIsNearOptimalAcrossSplits) {
  // Exhaustive check on a small instance: no contiguous split beats the
  // returned one by more than round-off.
  const auto e = fpm::test::constant_ensemble(2);
  util::Rng rng(17);
  std::vector<double> w(40);
  for (double& x : w) x = rng.uniform(0.5, 3.0);
  const auto b = partition_weighted_contiguous(e.list(), w);
  const double got = weighted_makespan(e.list(), w, b);
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t cut = 0; cut <= w.size(); ++cut) {
    const std::vector<std::size_t> cand{0, cut, w.size()};
    best = std::min(best, weighted_makespan(e.list(), w, cand));
  }
  EXPECT_LE(got, best * (1.0 + 1e-9));
}

TEST(WeightedContiguous, RejectsBadInput) {
  const auto e = fpm::test::constant_ensemble(2);
  EXPECT_THROW(
      partition_weighted_contiguous(e.list(), std::vector<double>{1.0, 0.0}),
      std::invalid_argument);
  EXPECT_THROW(partition_weighted_contiguous({}, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(WeightedMakespan, ComputesRangeTimes) {
  const auto e = fpm::test::constant_ensemble(2);  // speeds 100,150
  const std::vector<double> w{10.0, 20.0, 30.0, 60.0};
  const std::vector<std::size_t> b{0, 2, 4};
  // Ranges: [0,2): W=30, c=2 -> 30/100; [2,4): W=90, c=2 -> 90/150.
  EXPECT_DOUBLE_EQ(weighted_makespan(e.list(), w, b), 0.6);
}

}  // namespace
}  // namespace fpm::core
