// Concurrency tests for the batch-partitioning engine (core/server.hpp):
// many threads hammering one PartitionServer must produce results
// bit-identical to direct core::partition() calls, the sharded LRU cache
// must stay consistent under contention, observer-carrying policies must
// bypass the cache, and the Rebalancer must behave identically with and
// without a shared server. Run under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "balance/rebalancer.hpp"
#include "core/fpm.hpp"
#include "helpers.hpp"
#include "obs/metrics.hpp"

namespace fpm {
namespace {

using namespace std::chrono_literals;

TEST(PartitionServer, ServesBitIdenticalResultsFromManyThreads) {
  const test::Ensemble e = test::mixed_ensemble();
  const core::SpeedList list = e.list();
  // 8 distinct problem sizes: every thread cycles through all of them, so
  // the cache sees a racy mix of cold misses and hot hits on every key.
  std::vector<std::int64_t> ns;
  for (int i = 0; i < 8; ++i) ns.push_back(10000 + 7919LL * i);
  std::vector<core::Distribution> expected;
  for (const std::int64_t n : ns)
    expected.push_back(core::partition(list, n).distribution);

  core::PartitionServer server;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::size_t j = static_cast<std::size_t>(t + i) % ns.size();
        const core::PartitionResult r = server.serve(list, ns[j], {});
        if (r.distribution.counts != expected[j].counts) ++mismatches;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  const core::CacheStats stats = server.cache_stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kPerThread);
  // Concurrent first touches of one key may each miss, but never fewer
  // misses than distinct keys and never an unreasonable number more.
  EXPECT_GE(stats.misses, static_cast<std::int64_t>(ns.size()));
  EXPECT_LE(stats.misses, static_cast<std::int64_t>(ns.size()) * kThreads);
  EXPECT_EQ(stats.uncacheable, 0);
  EXPECT_LE(stats.entries, core::ServerOptions{}.cache_capacity);
}

TEST(PartitionServer, RunBatchPreservesRequestOrder) {
  const test::Ensemble e = test::power_ensemble(5);
  const core::SpeedList list = e.list();
  core::ServerOptions opts;
  opts.threads = 4;
  core::PartitionServer server(opts);
  std::vector<core::BatchRequest> batch;
  for (int i = 0; i < 40; ++i)
    batch.push_back({list, 5000 + 991LL * i, {}});
  const std::vector<core::ServeResult> results =
      server.run_batch(std::move(batch));
  ASSERT_EQ(results.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    const core::PartitionResult direct = core::partition(list, 5000 + 991LL * i);
    const core::ServeResult& got = results[static_cast<std::size_t>(i)];
    EXPECT_EQ(got.status, core::ServeStatus::Ok) << "request " << i;
    EXPECT_EQ(got.result.distribution.counts, direct.distribution.counts)
        << "request " << i;
  }
}

TEST(PartitionServer, PartitionBatchConvenienceMatchesDirectCalls) {
  const test::Ensemble e = test::exponential_ensemble(3);
  const core::SpeedList list = e.list();
  std::vector<core::BatchRequest> batch;
  for (int i = 0; i < 12; ++i) batch.push_back({list, 1000 + 313LL * i, {}});
  const auto results = core::partition_batch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_EQ(results[i].result.distribution.counts,
              core::partition(list, batch[i].n).distribution.counts);
}

TEST(PartitionServer, LruEvictsLeastRecentlyUsed) {
  const test::Ensemble e = test::constant_ensemble(3);
  const core::SpeedList list = e.list();
  core::ServerOptions opts;
  opts.threads = 1;
  opts.cache_capacity = 4;
  opts.cache_shards = 1;
  core::PartitionServer server(opts);
  for (int i = 0; i < 8; ++i) (void)server.serve(list, 1000 + i, {});
  core::CacheStats stats = server.cache_stats();
  EXPECT_EQ(stats.misses, 8);
  EXPECT_EQ(stats.entries, 4);
  EXPECT_EQ(stats.evictions, 4);
  // The four most recent keys are hits; the four oldest were evicted.
  for (int i = 4; i < 8; ++i) (void)server.serve(list, 1000 + i, {});
  stats = server.cache_stats();
  EXPECT_EQ(stats.hits, 4);
  (void)server.serve(list, 1000, {});  // evicted earlier: a miss again
  EXPECT_EQ(server.cache_stats().misses, 9);
}

TEST(PartitionServer, ObserverPoliciesBypassTheCache) {
  const test::Ensemble e = test::power_ensemble(4);
  const core::SpeedList list = e.list();
  core::PartitionServer server;
  std::atomic<int> steps{0};
  core::PartitionPolicy traced;
  traced.observer = [&steps](const core::SearchStep&) { ++steps; };
  const core::PartitionResult first = server.serve(list, 100000, traced);
  const int steps_per_run = steps.load();
  EXPECT_GT(steps_per_run, 0);
  for (int i = 0; i < 4; ++i) {
    const core::PartitionResult again = server.serve(list, 100000, traced);
    EXPECT_EQ(again.distribution.counts, first.distribution.counts);
  }
  // The observer fired on every call — nothing was answered from cache.
  EXPECT_EQ(steps.load(), 5 * steps_per_run);
  const core::CacheStats stats = server.cache_stats();
  EXPECT_EQ(stats.uncacheable, 5);
  EXPECT_EQ(stats.hits + stats.misses, 0);
}

TEST(PartitionServer, CacheKeyDistinguishesModelsAndPolicies) {
  const test::Ensemble a = test::power_ensemble(4);
  const test::Ensemble b = test::power_ensemble(4);  // structurally equal
  core::PartitionServer server;
  (void)server.serve(a.list(), 50000, {});
  // Same models (by content), same n, same policy: a hit.
  (void)server.serve(b.list(), 50000, {});
  EXPECT_EQ(server.cache_stats().hits, 1);
  // Different algorithm: a distinct key.
  core::PartitionPolicy basic;
  basic.algorithm = core::kAlgorithmBasic;
  (void)server.serve(a.list(), 50000, basic);
  EXPECT_EQ(server.cache_stats().misses, 2);
  // Different bounds: a distinct key even though format_policy omits them.
  core::PartitionPolicy bounded;
  bounded.algorithm = core::kAlgorithmBounded;
  bounded.bounds = {20000, 20000, 20000, 20000};
  (void)server.serve(a.list(), 50000, bounded);
  core::PartitionPolicy bounded2 = bounded;
  bounded2.bounds.back() = 30000;
  (void)server.serve(a.list(), 50000, bounded2);
  EXPECT_EQ(server.cache_stats().misses, 4);
}

TEST(PartitionServer, ClearCacheResetsEntries) {
  const test::Ensemble e = test::constant_ensemble(2);
  core::PartitionServer server;
  (void)server.serve(e.list(), 1234, {});
  EXPECT_EQ(server.cache_stats().entries, 1);
  server.clear_cache();
  EXPECT_EQ(server.cache_stats().entries, 0);
  (void)server.serve(e.list(), 1234, {});
  EXPECT_EQ(server.cache_stats().misses, 2);
}

TEST(PartitionServer, RunBatchDrainsAllTasksBeforeRethrowing) {
  // Regression test: run_batch used to rethrow the first failed future
  // while later requests of the batch could still be running on workers —
  // and those requests borrow their SpeedFunction objects, so unwinding
  // the caller freed models a worker was still reading. The batch (and
  // its ensemble) is scoped so that a premature rethrow becomes a
  // use-after-free, which ASan/TSan in CI turn into a hard failure.
  core::ServerOptions opts;
  opts.threads = 4;
  core::PartitionServer server(opts);
  {
    const test::Ensemble e = test::mixed_ensemble();
    std::vector<core::BatchRequest> batch;
    for (int i = 0; i < 64; ++i) {
      core::PartitionPolicy policy;
      if (i == 3) policy.algorithm = "no-such-algorithm";  // fails fast
      batch.push_back({e.list(), 50000 + 101LL * i, policy});
    }
    EXPECT_THROW(server.run_batch(std::move(batch)), std::invalid_argument);
  }  // ensemble destroyed here: every worker must already be done with it
  // The server stays usable after a failed batch.
  const test::Ensemble e2 = test::constant_ensemble(3);
  const auto results = server.run_batch({{e2.list(), 999, {}}});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].result.distribution.total(), 999);
}

TEST(PartitionServer, DisabledCacheCountsEveryRequestAsUncacheable) {
  // With cache_capacity = 0 every serve() must still be counted, so the
  // hit-rate denominator hits + misses + uncacheable equals the request
  // count instead of silently shrinking.
  core::ServerOptions opts;
  opts.threads = 2;
  opts.cache_capacity = 0;
  core::PartitionServer server(opts);
  const test::Ensemble e = test::mixed_ensemble();
  constexpr int kRequests = 10;
  for (int i = 0; i < kRequests; ++i)
    (void)server.serve(e.list(), 10000 + i, {});
  const core::CacheStats cs = server.cache_stats();
  EXPECT_EQ(cs.hits, 0);
  EXPECT_EQ(cs.misses, 0);
  EXPECT_EQ(cs.uncacheable, kRequests);
  EXPECT_EQ(cs.entries, 0u);
  EXPECT_EQ(cs.hits + cs.misses + cs.uncacheable, kRequests);
}

TEST(PartitionServer, ServeReportsIntoTheMetricsRegistry) {
  obs::metrics().reset();
  const test::Ensemble e = test::mixed_ensemble();
  core::PartitionServer server({.threads = 2});
  constexpr int kRequests = 12;
  core::StepTrace trace;
  for (int i = 0; i < kRequests; ++i) {
    core::PartitionPolicy policy;
    if (i % 4 == 3) policy.observer = trace.observer();  // uncacheable
    (void)server.serve(e.list(), 20000 + (i % 3), policy);
  }
  obs::MetricsRegistry& reg = obs::metrics();
  const std::int64_t hits =
      reg.counter(obs::names::kServerCacheHits).value();
  const std::int64_t misses =
      reg.counter(obs::names::kServerCacheMisses).value();
  const std::int64_t uncacheable =
      reg.counter(obs::names::kServerCacheUncacheable).value();
  EXPECT_EQ(hits + misses + uncacheable, kRequests);
  EXPECT_EQ(uncacheable, kRequests / 4);
  EXPECT_EQ(misses, 3);  // three distinct cacheable keys
  const auto latency =
      reg.histogram(obs::names::kServerServeLatency).snapshot();
  EXPECT_EQ(latency.count, kRequests);
  // The engine rollups fired for every non-hit request.
  std::int64_t invocations = 0;
  for (const auto& [name, value] : reg.snapshot().counters)
    if (name.rfind(obs::names::kPartitionInvocationsPrefix, 0) == 0)
      invocations += value;
  EXPECT_EQ(invocations, misses + uncacheable);
  EXPECT_GT(reg.counter(obs::names::kPartitionIntersectSolves).value(), 0);
}

TEST(PartitionServer, CacheHitIsBitIdenticalToPrecompiledMiss) {
  // The miss path now computes under a PrecompiledGuard (the server's
  // once-per-request compilation); hits and direct partition() calls must
  // still agree bit for bit.
  const test::Ensemble e = test::mixed_ensemble();
  const core::SpeedList list = e.list();
  const core::PartitionResult direct = core::partition(list, 123457);
  core::PartitionServer server;
  const core::PartitionResult miss = server.serve(list, 123457);
  const core::PartitionResult hit = server.serve(list, 123457);
  EXPECT_EQ(miss.distribution.counts, direct.distribution.counts);
  EXPECT_EQ(hit.distribution.counts, direct.distribution.counts);
  EXPECT_EQ(hit.stats.speed_evals, direct.stats.speed_evals);
  EXPECT_EQ(hit.stats.intersect_solves, direct.stats.intersect_solves);
}

TEST(PartitionServer, DestructorShedsQueuedRequestsWithoutBreakingPromises) {
  // Graceful shutdown: destroying a server with a deep queue must fulfil
  // every future — queued requests come back ServeStatus::Shed
  // (ShedReason::Shutdown), never a broken_promise. Run under TSan in CI.
  const test::Ensemble e = test::mixed_ensemble();
  const core::SpeedList list = e.list();
  std::vector<std::future<core::ServeResult>> futures;
  {
    core::ServerOptions opts;
    opts.threads = 2;
    opts.cache_capacity = 0;  // every request solves: the queue stays deep
    core::PartitionServer server(opts);
    for (int i = 0; i < 64; ++i)
      futures.push_back(server.submit({list, 200000 + 1013LL * i, {}, {}}));
  }  // destructor: shed the queue, finish in-flight, join
  int answered = 0, shed = 0;
  for (auto& f : futures) {
    const core::ServeResult r = f.get();  // must never throw broken_promise
    if (r.status == core::ServeStatus::Shed) {
      EXPECT_EQ(r.shed_reason, core::ShedReason::Shutdown);
      ++shed;
    } else {
      EXPECT_EQ(r.status, core::ServeStatus::Ok);
      ++answered;
    }
  }
  EXPECT_EQ(answered + shed, 64);
  EXPECT_GT(shed, 0) << "2 workers cannot finish 64 solves before teardown";
}

TEST(PartitionServer, DrainRacesConcurrentSubmittersSafely) {
  // drain() while other threads keep submitting: every future must still
  // resolve, and the accounting invariant must hold. Run under TSan in CI.
  const test::Ensemble e = test::mixed_ensemble();
  const core::SpeedList list = e.list();
  core::ServerOptions opts;
  opts.threads = 2;
  opts.cache_capacity = 0;
  core::PartitionServer server(opts);
  std::atomic<int> resolved{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < 16; ++i) {
        auto f = server.submit({list, 100000 + 419LL * (t * 16 + i), {}, {}});
        (void)f.get();
        ++resolved;
      }
    });
  }
  for (int i = 0; i < 8; ++i) (void)server.drain(1ms);
  for (auto& t : submitters) t.join();
  EXPECT_EQ(resolved.load(), 64);
  EXPECT_TRUE(server.drain(30s));
  const core::SloStats s = server.slo_stats();
  EXPECT_EQ(s.offered, 64);
  EXPECT_EQ(s.offered, s.admitted + s.degraded + s.shed);
}

TEST(Rebalancer, SharedServerIsBehaviourallyInvisible) {
  balance::OnlineModelOptions model;
  model.min_size = 10.0;
  model.max_size = 1e6;
  model.buckets = 16;
  balance::RebalancerOptions plain;
  plain.warmup_iterations = 2;
  core::PartitionServer server;
  balance::RebalancerOptions shared = plain;
  shared.server = &server;

  balance::Rebalancer rb_plain(4, 100000, model, plain);
  balance::Rebalancer rb_shared(4, 100000, model, shared);
  const std::vector<double> times{8.0, 2.0, 1.0, 1.5};
  for (int i = 0; i < 12; ++i) {
    const bool a = rb_plain.step(times);
    const bool b = rb_shared.step(times);
    EXPECT_EQ(a, b) << "iteration " << i;
    EXPECT_EQ(rb_plain.distribution().counts, rb_shared.distribution().counts)
        << "iteration " << i;
  }
  EXPECT_EQ(rb_plain.repartitions(), rb_shared.repartitions());
  EXPECT_GT(rb_shared.repartitions(), 0);
  // The shared instance's repartitions (and rejected candidates) actually
  // went through the server.
  const core::CacheStats stats = server.cache_stats();
  EXPECT_GE(stats.hits + stats.misses,
            static_cast<std::int64_t>(rb_shared.repartitions()));
}

}  // namespace
}  // namespace fpm
