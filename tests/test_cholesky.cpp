// Tests for the Cholesky kernels: reconstruction, blocked/unblocked
// bit-identity, solves, SPD detection, and flop accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.hpp"
#include "linalg/kernels.hpp"

namespace fpm::linalg {
namespace {

TEST(Cholesky, ReconstructsTheMatrix) {
  for (const std::size_t n : {1u, 2u, 7u, 24u, 50u}) {
    const util::MatrixD a = spd_matrix(n, 100 + n);
    util::MatrixD l = a;
    ASSERT_TRUE(cholesky_factor(l)) << n;
    EXPECT_LT(util::max_abs_diff(cholesky_reconstruct(l), a), 1e-8 * n)
        << n;
    // Strict upper triangle zeroed.
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j)
        EXPECT_DOUBLE_EQ(l(i, j), 0.0);
  }
}

TEST(Cholesky, BlockedBitIdenticalToUnblocked) {
  for (const std::size_t n : {1u, 8u, 17u, 33u, 64u}) {
    for (const std::size_t b : {1u, 4u, 8u, 16u}) {
      util::MatrixD a1 = spd_matrix(n, 300 + n);
      util::MatrixD a2 = a1;
      ASSERT_TRUE(cholesky_factor(a1));
      ASSERT_TRUE(block_cholesky_factor(a2, b));
      EXPECT_DOUBLE_EQ(util::max_abs_diff(a1, a2), 0.0)
          << "n=" << n << " b=" << b;
    }
  }
}

TEST(Cholesky, SolveRecoversKnownSolution) {
  const std::size_t n = 30;
  const util::MatrixD a = spd_matrix(n, 7);
  std::vector<double> x_true(n);
  for (std::size_t i = 0; i < n; ++i) x_true[i] = std::cos(double(i));
  std::vector<double> rhs(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) rhs[i] += a(i, j) * x_true[j];
  util::MatrixD l = a;
  ASSERT_TRUE(cholesky_factor(l));
  const std::vector<double> x = cholesky_solve(l, rhs);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-7);
}

TEST(Cholesky, RejectsNonPositiveDefinite) {
  util::MatrixD indefinite(2, 2);
  indefinite(0, 0) = 1.0;
  indefinite(0, 1) = indefinite(1, 0) = 5.0;
  indefinite(1, 1) = 1.0;  // eigenvalues 6 and -4
  EXPECT_FALSE(cholesky_factor(indefinite));
  util::MatrixD zero(3, 3);  // all-zero: first pivot not positive
  EXPECT_FALSE(block_cholesky_factor(zero, 2));
}

TEST(Cholesky, ValidatesArguments) {
  util::MatrixD rect = random_matrix(3, 4, 1);
  EXPECT_THROW(cholesky_factor(rect), std::invalid_argument);
  util::MatrixD sq = spd_matrix(4, 1);
  EXPECT_THROW(block_cholesky_factor(sq, 0), std::invalid_argument);
  util::MatrixD l = spd_matrix(4, 2);
  ASSERT_TRUE(cholesky_factor(l));
  EXPECT_THROW(cholesky_solve(l, std::vector<double>(3)),
               std::invalid_argument);
}

TEST(Cholesky, FlopsCubeOverThree) {
  const double n = 600.0;
  EXPECT_NEAR(cholesky_flops(600), n * n * n / 3.0, 0.02 * n * n * n / 3.0);
}

TEST(Cholesky, SpdMatrixIsSymmetricAndFactorable) {
  const util::MatrixD a = spd_matrix(20, 9);
  for (std::size_t i = 0; i < 20; ++i)
    for (std::size_t j = 0; j < 20; ++j)
      EXPECT_DOUBLE_EQ(a(i, j), a(j, i));
  util::MatrixD l = a;
  EXPECT_TRUE(cholesky_factor(l));
}

}  // namespace
}  // namespace fpm::linalg
