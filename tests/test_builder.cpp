// Tests for the §3.1 model builder: trisection refinement, band acceptance,
// probe accounting, and accuracy of the built model against ground truth —
// both noise-free and under simulated fluctuation bands.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "core/builder.hpp"
#include "core/speed_function.hpp"
#include "helpers.hpp"
#include "util/rng.hpp"

namespace fpm::core {
namespace {

/// Noise-free source reading straight off a ground-truth curve.
class TruthSource final : public MeasurementSource {
 public:
  explicit TruthSource(const SpeedFunction& f) : f_(&f) {}
  double measure(double size) override {
    ++calls;
    return f_->speed(size);
  }
  int calls = 0;

 private:
  const SpeedFunction* f_;
};

/// Source with multiplicative uniform noise of the given half-width.
class NoisySource final : public MeasurementSource {
 public:
  NoisySource(const SpeedFunction& f, double half_width, std::uint64_t seed)
      : f_(&f), half_(half_width), rng_(seed) {}
  double measure(double size) override {
    return f_->speed(size) * (1.0 + rng_.uniform(-half_, half_));
  }

 private:
  const SpeedFunction* f_;
  double half_;
  util::Rng rng_;
};

BuilderOptions default_opts(const SpeedFunction& f) {
  BuilderOptions opts;
  opts.min_size = f.max_size() * 1e-4;
  opts.max_size = f.max_size();
  return opts;
}

/// Source replaying a fixed sequence of readings (then repeating the last).
class SequenceSource final : public MeasurementSource {
 public:
  explicit SequenceSource(std::vector<double> readings)
      : readings_(std::move(readings)) {}
  double measure(double) override {
    ++calls;
    const std::size_t i = std::min(next_++, readings_.size() - 1);
    return readings_[i];
  }
  int calls = 0;

 private:
  std::vector<double> readings_;
  std::size_t next_ = 0;
};

TEST(RetryingSource, PassesValidReadingsThroughUntouched) {
  SequenceSource inner({50.0, 40.0, 30.0});
  RetryingMeasurementSource src(inner);
  EXPECT_DOUBLE_EQ(src.measure(100.0), 50.0);
  EXPECT_DOUBLE_EQ(src.measure(120.0), 40.0);
  EXPECT_EQ(src.retries(), 0);
  EXPECT_EQ(src.rejected(), 0);
}

TEST(RetryingSource, RetriesThroughNaNAndNonPositiveReadings) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  SequenceSource inner({nan, -3.0, 0.0, 42.0});
  RetryingMeasurementSource src(inner);
  EXPECT_DOUBLE_EQ(src.measure(100.0), 42.0);
  EXPECT_EQ(src.retries(), 3);
  EXPECT_EQ(src.rejected(), 3);
}

TEST(RetryingSource, RejectsOutliersAgainstNearbyHistory) {
  // An established ~50 MFLOPS reading at this size makes a 100x spike a
  // glitch, not a measurement.
  SequenceSource inner({50.0, 5000.0, 48.0});
  RetryingMeasurementSource src(inner);
  EXPECT_DOUBLE_EQ(src.measure(100.0), 50.0);
  EXPECT_DOUBLE_EQ(src.measure(100.0), 48.0);  // the spike was re-measured
  EXPECT_EQ(src.rejected(), 1);
}

TEST(RetryingSource, BackoffEventuallyAcceptsAPersistentChange) {
  // The machine genuinely degraded 10x (outside outlier_factor = 4): the
  // widening acceptance band must let the new truth in rather than pin the
  // source to stale history forever.
  SequenceSource inner({50.0, 5.0, 5.0, 5.0, 5.0, 5.0});
  RetryOptions opts;
  opts.max_retries = 4;
  RetryingMeasurementSource src(inner, opts);
  EXPECT_DOUBLE_EQ(src.measure(100.0), 50.0);
  EXPECT_DOUBLE_EQ(src.measure(100.0), 5.0);
  EXPECT_GE(src.retries(), 1);
}

TEST(RetryingSource, FallsBackToHistoryWhenRetriesExhaust) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  SequenceSource inner({50.0, nan, nan, nan, nan, nan, nan});
  RetryOptions opts;
  opts.max_retries = 2;
  RetryingMeasurementSource src(inner, opts);
  EXPECT_DOUBLE_EQ(src.measure(100.0), 50.0);
  // Every retry at a similar size fails: substitute the nearest accepted.
  EXPECT_DOUBLE_EQ(src.measure(110.0), 50.0);
  EXPECT_EQ(inner.calls, 1 + 1 + opts.max_retries);
}

TEST(RetryingSource, ThrowsWhenNoReadingWasEverValid) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  SequenceSource inner({nan});
  RetryOptions opts;
  opts.max_retries = 1;
  RetryingMeasurementSource src(inner, opts);
  EXPECT_THROW(src.measure(100.0), std::runtime_error);
}

TEST(RetryingSource, OutlierReferenceRespectsTheSizeWindow) {
  // With reference_window = 1 only same-size history judges a reading: a
  // large drop across a decade of size (a paging cliff) must be accepted.
  SequenceSource inner({500.0, 2.0});
  RetryOptions opts;
  opts.reference_window = 1.0;
  RetryingMeasurementSource src(inner, opts);
  EXPECT_DOUBLE_EQ(src.measure(1e4), 500.0);
  EXPECT_DOUBLE_EQ(src.measure(1e6), 2.0);
  EXPECT_EQ(src.rejected(), 0);
}

TEST(RetryingSource, ValidatesOptions) {
  SequenceSource inner({1.0});
  RetryOptions bad;
  bad.max_retries = -1;
  EXPECT_THROW(RetryingMeasurementSource(inner, bad), std::invalid_argument);
  bad = RetryOptions{};
  bad.outlier_factor = 1.0;
  EXPECT_THROW(RetryingMeasurementSource(inner, bad), std::invalid_argument);
  bad = RetryOptions{};
  bad.reference_window = 0.5;
  EXPECT_THROW(RetryingMeasurementSource(inner, bad), std::invalid_argument);
  bad = RetryOptions{};
  bad.backoff = 0.9;
  EXPECT_THROW(RetryingMeasurementSource(inner, bad), std::invalid_argument);
}

TEST(Builder, ConstantCurveAcceptedWithFourProbes) {
  // A constant-speed curve: the initial chord misses (it runs to zero at
  // b), so refinement happens, but a constant function needs few probes.
  const ConstantSpeed f(100.0, 1e6);
  TruthSource src(f);
  const BuiltModel m = build_speed_band(src, default_opts(f));
  EXPECT_EQ(m.probes, src.calls);
  EXPECT_GE(m.probes, 3);  // s(a) plus at least one trisection pair
}

TEST(Builder, RejectsBadOptions) {
  const ConstantSpeed f(100.0, 1e6);
  TruthSource src(f);
  BuilderOptions opts = default_opts(f);
  opts.epsilon = 0.0;
  EXPECT_THROW(build_speed_band(src, opts), std::invalid_argument);
  opts = default_opts(f);
  opts.min_size = opts.max_size;
  EXPECT_THROW(build_speed_band(src, opts), std::invalid_argument);
  opts = default_opts(f);
  opts.samples_per_point = 0;
  EXPECT_THROW(build_speed_band(src, opts), std::invalid_argument);
}

TEST(Builder, CenterCurveTracksGroundTruthWithinEpsilon) {
  // Noise-free build: between the probe anchors the centre curve must stay
  // within a small multiple of epsilon of the truth over the bulk of the
  // modelled range (the band guarantees epsilon at accepted probes; linear
  // interpolation adds bounded error on smooth curves).
  for (const auto& e : fpm::test::all_ensembles(2)) {
    if (e.name == "exp-decay") continue;  // reaches ~0 early; ratios explode
    // The paper's §3.1 procedure assumes a chord crosses the curve at most
    // once between its endpoints (Figure 19a/b); the rise-then-fall
    // unimodal family violates that, so the trisection acceptance test can
    // legitimately accept a coarse band there — excluded from the strict
    // accuracy check (covered by UnimodalStillYieldsValidModel below).
    if (e.name == "unimodal") continue;
    const SpeedFunction& f = *e.owned[0];
    TruthSource src(f);
    BuilderOptions opts = default_opts(f);
    opts.epsilon = 0.05;
    const BuiltModel m = build_speed_band(src, opts);
    const PiecewiseLinearSpeed centre = m.band.center();
    int checked = 0, within = 0;
    for (double x = opts.min_size * 2.0; x < f.max_size() * 0.8; x *= 1.3) {
      ++checked;
      const double truth = f.speed(x);
      if (std::abs(centre.speed(x) - truth) <= 0.15 * truth) ++within;
    }
    EXPECT_GE(within, checked * 8 / 10) << e.name;
  }
}

TEST(Builder, UnimodalStillYieldsValidModel) {
  // Outside the §3.1 chord assumption the band may be coarse, but the
  // output must still be a well-formed model usable by the partitioners.
  const auto e = fpm::test::unimodal_ensemble(1);
  TruthSource src(*e.owned[0]);
  const BuiltModel m = build_speed_band(src, default_opts(*e.owned[0]));
  const PiecewiseLinearSpeed centre = m.band.center();
  EXPECT_TRUE(satisfies_shape_requirement(centre));
  EXPECT_GT(m.probes, 0);
}

TEST(Builder, MoreProbesForSharperCurves) {
  // A stepped (cliffy) curve needs more experimental points than a linear
  // one over the same range.
  const LinearDecaySpeed smooth(200.0, 1e7);
  std::vector<SteppedSpeed::Step> steps;
  steps.push_back({1e5, 150.0, 1e4});
  steps.push_back({5e6, 8.0, 2e5});
  const SteppedSpeed cliffy(200.0, std::move(steps), 1e7);

  TruthSource s1(smooth), s2(cliffy);
  BuilderOptions o1 = default_opts(smooth);
  BuilderOptions o2 = default_opts(cliffy);
  const int p_smooth = build_speed_band(s1, o1).probes;
  const int p_cliffy = build_speed_band(s2, o2).probes;
  EXPECT_GT(p_cliffy, p_smooth);
}

TEST(Builder, RespectsProbeBudget) {
  std::vector<SteppedSpeed::Step> steps;
  steps.push_back({1e5, 150.0, 1e4});
  steps.push_back({5e6, 8.0, 2e5});
  const SteppedSpeed f(200.0, std::move(steps), 1e7);
  TruthSource src(f);
  BuilderOptions opts = default_opts(f);
  opts.max_probes = 9;
  const BuiltModel m = build_speed_band(src, opts);
  EXPECT_LE(m.probes, 9);
}

TEST(Builder, SamplesPerPointMultipliesProbes) {
  const LinearDecaySpeed f(200.0, 1e7);
  TruthSource s1(f), s3(f);
  BuilderOptions o1 = default_opts(f);
  BuilderOptions o3 = default_opts(f);
  o3.samples_per_point = 3;
  const BuiltModel m1 = build_speed_band(s1, o1);
  const BuiltModel m3 = build_speed_band(s3, o3);
  EXPECT_EQ(m3.probes, 3 * m1.probes);
}

TEST(Builder, ProbeLogMatchesCount) {
  const LinearDecaySpeed f(150.0, 1e6);
  TruthSource src(f);
  const BuiltModel m = build_speed_band(src, default_opts(f));
  EXPECT_EQ(static_cast<int>(m.probed.size()),
            m.probes);  // one log entry per call with samples_per_point == 1
  for (const SpeedPoint& p : m.probed) {
    EXPECT_GE(p.size, default_opts(f).min_size * (1.0 - 1e-12));
    EXPECT_LE(p.size, f.max_size());
  }
}

TEST(Builder, NoisyMeasurementsStillProduceUsableModel) {
  // Noise within the epsilon band: the built centre curve must still be a
  // valid model (construction succeeds => shape requirement holds) and
  // roughly track the truth.
  const PowerDecaySpeed f(180.0, 1e5, 1.0, 1e7);
  NoisySource src(f, 0.04, 99);
  BuilderOptions opts = default_opts(f);
  opts.samples_per_point = 3;
  const BuiltModel m = build_speed_band(src, opts);
  const PiecewiseLinearSpeed centre = m.band.center();
  // Mid-range agreement within 25% (noise + interpolation).
  const double x = 3e5;
  EXPECT_NEAR(centre.speed(x), f.speed(x), 0.25 * f.speed(x));
}

TEST(Builder, BuiltModelPartitionsCloseToGroundTruth) {
  // End-to-end property: partitioning with built models must yield a
  // makespan (evaluated on the TRUE curves) within a few percent of
  // partitioning with the true curves themselves.
  const auto e = fpm::test::power_ensemble(4);
  std::vector<PiecewiseLinearSpeed> built;
  for (const auto& f : e.owned) {
    TruthSource src(*f);
    BuilderOptions opts = default_opts(*f);
    built.push_back(build_speed_band(src, opts).band.center());
  }
  SpeedList built_list;
  for (const auto& b : built) built_list.push_back(&b);
  const SpeedList truth_list = e.list();

  const std::int64_t n = 2000003;
  const Distribution with_built =
      partition_combined(built_list, n).distribution;
  const Distribution with_truth =
      partition_combined(truth_list, n).distribution;
  const double t_built = makespan(truth_list, with_built);
  const double t_truth = makespan(truth_list, with_truth);
  EXPECT_LE(t_built, t_truth * 1.10);
}

TEST(Builder, CenterModelConvenienceMatchesBandCenter) {
  const LinearDecaySpeed f(150.0, 1e6);
  TruthSource s1(f), s2(f);
  const BuilderOptions opts = default_opts(f);
  const PiecewiseLinearSpeed a = build_speed_model(s1, opts);
  const PiecewiseLinearSpeed b = build_speed_band(s2, opts).band.center();
  for (double x = 200.0; x < 1e6; x *= 2.0)
    EXPECT_DOUBLE_EQ(a.speed(x), b.speed(x));
}

}  // namespace
}  // namespace fpm::core
