// Unit and property tests for the fine-tuning layer: the greedy completion,
// the from-zero greedy, and the exact-optimum oracle itself (cross-checked
// against brute force on small instances).
#include <gtest/gtest.h>

#include <functional>

#include "core/finetune.hpp"
#include "helpers.hpp"

namespace fpm::core {
namespace {

/// Brute-force optimal makespan over all allocations of n elements to p
/// processors (exponential; only for tiny instances).
double brute_force_makespan(const SpeedList& speeds, std::int64_t n) {
  const std::size_t p = speeds.size();
  double best = std::numeric_limits<double>::infinity();
  std::vector<std::int64_t> counts(p, 0);
  std::function<void(std::size_t, std::int64_t)> rec = [&](std::size_t i,
                                                           std::int64_t left) {
    if (i + 1 == p) {
      counts[i] = left;
      Distribution d{counts};
      best = std::min(best, makespan(speeds, d));
      return;
    }
    for (std::int64_t c = 0; c <= left; ++c) {
      counts[i] = c;
      rec(i + 1, left - c);
    }
  };
  rec(0, n);
  return best;
}

TEST(ExactOptimum, MatchesBruteForceOnTinyInstances) {
  for (const auto& e : fpm::test::all_ensembles(3)) {
    const SpeedList speeds = e.list();
    for (const std::int64_t n : {1L, 2L, 5L, 9L, 14L}) {
      const Distribution d = exact_optimum(speeds, n);
      EXPECT_EQ(d.total(), n) << e.name;
      EXPECT_NEAR(makespan(speeds, d), brute_force_makespan(speeds, n),
                  1e-9 * std::max(1.0, makespan(speeds, d)))
          << e.name << " n=" << n;
    }
  }
}

TEST(ExactOptimum, HandlesZeroAndRejectsEmpty) {
  const auto e = fpm::test::linear_ensemble(3);
  EXPECT_EQ(exact_optimum(e.list(), 0).total(), 0);
  EXPECT_THROW(exact_optimum({}, 5), std::invalid_argument);
}

TEST(GreedyFromZero, MatchesExactOptimumMakespan) {
  for (const auto& e : fpm::test::all_ensembles(4)) {
    const SpeedList speeds = e.list();
    for (const std::int64_t n : {1L, 7L, 100L, 4096L}) {
      const Distribution g = greedy_from_zero(speeds, n);
      const Distribution x = exact_optimum(speeds, n);
      EXPECT_EQ(g.total(), n);
      EXPECT_NEAR(makespan(speeds, g), makespan(speeds, x),
                  1e-9 * std::max(1e-30, makespan(speeds, x)))
          << e.name << " n=" << n;
    }
  }
}

TEST(FineTune, CompletesFloorAllocationToExactSum) {
  const auto e = fpm::test::power_ensemble(4);
  const SpeedList speeds = e.list();
  // A deliberately crude fractional seed (the real callers pass the steep
  // bracket line's intersections).
  const std::vector<double> seed{100.25, 250.75, 324.5, 99.99};
  const std::int64_t n = 900;
  const Distribution d = fine_tune(speeds, n, seed);
  EXPECT_EQ(d.total(), n);
  for (std::size_t i = 0; i < seed.size(); ++i)
    EXPECT_GE(d.counts[i], static_cast<std::int64_t>(seed[i]) - 1);
}

TEST(FineTune, ShedsExcessWhenSeedOverfills) {
  const auto e = fpm::test::constant_ensemble(3);
  const std::vector<double> seed{50.0, 50.0, 50.0};
  const Distribution d = fine_tune(e.list(), 100, seed);
  EXPECT_EQ(d.total(), 100);
  for (const auto c : d.counts) EXPECT_GE(c, 0);
}

TEST(FineTune, NegativeSeedEntriesClampToZero) {
  const auto e = fpm::test::constant_ensemble(2);
  const std::vector<double> seed{-3.0, 0.5};
  const Distribution d = fine_tune(e.list(), 10, seed);
  EXPECT_EQ(d.total(), 10);
  for (const auto c : d.counts) EXPECT_GE(c, 0);
}

TEST(FineTune, RejectsSizeMismatch) {
  const auto e = fpm::test::constant_ensemble(2);
  EXPECT_THROW(fine_tune(e.list(), 10, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(FineTune, GreedyCompletionIsOptimalFromConsistentSeed) {
  // Property (DESIGN.md §5): starting from the floors of a line with sum
  // <= n, the greedy completion reaches the global optimal makespan.
  for (const auto& e : fpm::test::all_ensembles(5)) {
    const SpeedList speeds = e.list();
    const std::int64_t n = 100003;
    const SlopeBracket br = detect_bracket(speeds, n);
    const std::vector<double> small = sizes_at(speeds, br.hi_slope);
    const Distribution tuned = fine_tune(speeds, n, small);
    const Distribution best = exact_optimum(speeds, n);
    EXPECT_EQ(tuned.total(), n) << e.name;
    // Allow the one-element slack of integer granularity.
    double slack = 0.0;
    for (std::size_t i = 0; i < speeds.size(); ++i) {
      const double x = static_cast<double>(best.counts[i]);
      slack = std::max(slack, speeds[i]->time(x + 1.0) - speeds[i]->time(x));
    }
    EXPECT_LE(makespan(speeds, tuned), makespan(speeds, best) + slack)
        << e.name;
  }
}

TEST(ExactOptimum, NeverWorseThanProportionalHeuristics) {
  const auto e = fpm::test::mixed_ensemble();
  const SpeedList speeds = e.list();
  const std::int64_t n = 250000;
  const double t_opt = makespan(speeds, exact_optimum(speeds, n));
  const double t_even = makespan(speeds, partition_even(n, speeds.size()));
  const Distribution prop = partition_single_number_at(speeds, n, 1000.0);
  EXPECT_LE(t_opt, makespan(speeds, prop) * (1.0 + 1e-12));
  EXPECT_LE(t_opt, t_even * (1.0 + 1e-12));
}

}  // namespace
}  // namespace fpm::core
