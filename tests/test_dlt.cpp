// Tests for the Divisible Load Theory baselines: compute-time curves,
// the simultaneous-finish schedule, memory limits, order optimization, and
// the adapter from functional performance models.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "dlt/dlt.hpp"
#include "helpers.hpp"

namespace fpm::dlt {
namespace {

TEST(ComputeTime, ConstantRate) {
  const ComputeTime c = ComputeTime::constant_rate(2.0);
  EXPECT_DOUBLE_EQ(c.seconds(0.0), 0.0);
  EXPECT_DOUBLE_EQ(c.seconds(5.0), 10.0);
  EXPECT_DOUBLE_EQ(c.invert(10.0), 5.0);
  EXPECT_THROW(ComputeTime::constant_rate(0.0), std::invalid_argument);
}

TEST(ComputeTime, OutOfCoreKinksAtMemory) {
  // 1 s/unit in core up to 10 units, 5 s/unit beyond.
  const ComputeTime c = ComputeTime::out_of_core(1.0, 10.0, 5.0);
  EXPECT_DOUBLE_EQ(c.seconds(10.0), 10.0);
  EXPECT_DOUBLE_EQ(c.seconds(12.0), 20.0);
  EXPECT_DOUBLE_EQ(c.invert(10.0), 10.0);
  EXPECT_DOUBLE_EQ(c.invert(20.0), 12.0);
  EXPECT_THROW(ComputeTime::out_of_core(2.0, 10.0, 1.0),
               std::invalid_argument);
}

TEST(ComputeTime, InvertIsSecondsInverse) {
  const ComputeTime c = ComputeTime::out_of_core(0.5, 100.0, 3.0);
  for (const double load : {1.0, 50.0, 100.0, 150.0, 1000.0})
    EXPECT_NEAR(c.invert(c.seconds(load)), load, 1e-9);
}

TEST(Dlt, TwoIdenticalWorkersSplitEvenlyWithFreeLinks) {
  const DltWorker w{0.0, 0.0, ComputeTime::constant_rate(1.0), 1e18};
  const std::vector<DltWorker> workers{w, w};
  const DltSchedule s = schedule_single_round(workers, 100.0);
  ASSERT_TRUE(s.feasible);
  EXPECT_NEAR(s.shares[0], 50.0, 1e-6);
  EXPECT_NEAR(s.shares[1], 50.0, 1e-6);
  EXPECT_NEAR(s.makespan_s, 50.0, 1e-6);
}

TEST(Dlt, ClassicTwoWorkerClosedForm) {
  // Textbook single-installment: w1 = w2 = 1 s/unit, z = 1 s/unit, no
  // startup, V = 1. Simultaneous finish: a1(z + w) = T and the second
  // worker starts after a1*z: a1*z + a2*(z + w) = T. With z = w = 1:
  // 2*a1 = a1 + 2*a2 => a1 = 2*a2, so a1 = 2/3, a2 = 1/3, T = 4/3.
  const DltWorker w{0.0, 1.0, ComputeTime::constant_rate(1.0), 1e18};
  const std::vector<DltWorker> workers{w, w};
  const DltSchedule s = schedule_single_round(workers, 1.0);
  ASSERT_TRUE(s.feasible);
  EXPECT_NEAR(s.shares[0], 2.0 / 3.0, 1e-6);
  EXPECT_NEAR(s.shares[1], 1.0 / 3.0, 1e-6);
  EXPECT_NEAR(s.makespan_s, 4.0 / 3.0, 1e-6);
}

TEST(Dlt, SharesSumToLoad) {
  std::vector<DltWorker> workers;
  for (int i = 0; i < 5; ++i)
    workers.push_back({0.01 * i, 0.1 + 0.05 * i,
                       ComputeTime::constant_rate(1.0 + 0.3 * i), 1e18});
  const DltSchedule s = schedule_single_round(workers, 1234.5);
  ASSERT_TRUE(s.feasible);
  const double sum =
      std::accumulate(s.shares.begin(), s.shares.end(), 0.0);
  EXPECT_NEAR(sum, 1234.5, 1e-6 * 1234.5);
}

TEST(Dlt, AllWorkersFinishTogetherWithoutMemoryBinding) {
  std::vector<DltWorker> workers;
  for (int i = 0; i < 4; ++i)
    workers.push_back(
        {0.0, 0.2 + 0.1 * i, ComputeTime::constant_rate(2.0 - 0.3 * i), 1e18});
  const double V = 500.0;
  const DltSchedule s = schedule_single_round(workers, V);
  ASSERT_TRUE(s.feasible);
  // Reconstruct per-worker finish times.
  double clock = 0.0;
  for (std::size_t i = 0; i < workers.size(); ++i) {
    clock += workers[i].startup_s + workers[i].link_s_per_unit * s.shares[i];
    const double finish = clock + workers[i].compute.seconds(s.shares[i]);
    EXPECT_NEAR(finish, s.makespan_s, 1e-5 * s.makespan_s) << i;
  }
}

TEST(Dlt, MemoryLimitCapsAShare) {
  const DltWorker fast{0.0, 0.0, ComputeTime::constant_rate(1.0), 10.0};
  const DltWorker slow{0.0, 0.0, ComputeTime::constant_rate(4.0), 1e18};
  const std::vector<DltWorker> workers{fast, slow};
  const DltSchedule s = schedule_single_round(workers, 100.0);
  ASSERT_TRUE(s.feasible);
  EXPECT_NEAR(s.shares[0], 10.0, 1e-6);  // clamped at the buffer
  EXPECT_NEAR(s.shares[1], 90.0, 1e-6);
}

TEST(Dlt, InfeasibleWhenMemoryCannotHoldLoad) {
  const DltWorker w{0.0, 0.0, ComputeTime::constant_rate(1.0), 10.0};
  const std::vector<DltWorker> workers{w, w};
  const DltSchedule s = schedule_single_round(workers, 100.0);
  EXPECT_FALSE(s.feasible);
}

TEST(Dlt, RejectsBadArguments) {
  EXPECT_THROW(schedule_single_round({}, 10.0), std::invalid_argument);
  const DltWorker w{0.0, 0.0, ComputeTime::constant_rate(1.0), 1e18};
  const std::vector<DltWorker> workers{w};
  EXPECT_THROW(schedule_single_round(workers, -1.0), std::invalid_argument);
  EXPECT_EQ(schedule_single_round(workers, 0.0).makespan_s, 0.0);
}

TEST(Dlt, OutOfCoreRatePenalizesOverfilling) {
  // Same workers, but one pays 10x beyond 30 units: the schedule keeps its
  // share near the memory knee.
  const DltWorker healthy{0.0, 0.0, ComputeTime::constant_rate(1.0), 1e18};
  const DltWorker paging{0.0, 0.0, ComputeTime::out_of_core(1.0, 30.0, 10.0),
                         1e18};
  const std::vector<DltWorker> workers{healthy, paging};
  const DltSchedule s = schedule_single_round(workers, 100.0);
  ASSERT_TRUE(s.feasible);
  EXPECT_GT(s.shares[0], 60.0);
  EXPECT_LT(s.shares[1], 40.0);
}

TEST(Dlt, OptimizeOrderNeverHurts) {
  std::vector<DltWorker> workers;
  for (int i = 0; i < 5; ++i)
    workers.push_back({0.005, 0.5 - 0.08 * i,
                       ComputeTime::constant_rate(0.5 + 0.4 * i), 1e18});
  const double V = 200.0;
  const double t_id = schedule_single_round(workers, V).makespan_s;
  const auto order = optimize_order(workers, V);
  std::vector<DltWorker> permuted;
  for (const std::size_t i : order) permuted.push_back(workers[i]);
  const double t_opt = schedule_single_round(permuted, V).makespan_s;
  EXPECT_LE(t_opt, t_id * (1.0 + 1e-9));
  // The permutation is a valid ordering of all workers.
  std::vector<std::size_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(MultiRound, OneRoundMatchesSingleRoundShares) {
  std::vector<DltWorker> workers;
  for (int i = 0; i < 3; ++i)
    workers.push_back({0.01, 0.2 + 0.1 * i,
                       ComputeTime::constant_rate(1.0 + 0.4 * i), 1e18});
  const DltSchedule single = schedule_single_round(workers, 500.0);
  const DltMultiSchedule multi = schedule_multi_round(workers, 500.0, 1);
  ASSERT_TRUE(multi.feasible);
  for (std::size_t i = 0; i < workers.size(); ++i)
    EXPECT_NEAR(multi.shares[i], single.shares[i], 1e-6);
  EXPECT_NEAR(multi.makespan_s, single.makespan_s, 0.02 * single.makespan_s);
}

TEST(MultiRound, PipeliningHelpsWithSlowStartupFreeLinks) {
  // Slow links, no startup: installments overlap communication with
  // computation, so more rounds must not hurt (and should clearly help).
  std::vector<DltWorker> workers;
  for (int i = 0; i < 3; ++i)
    workers.push_back({0.0, 1.0, ComputeTime::constant_rate(2.0), 1e18});
  const double V = 300.0;
  const double t1 = schedule_multi_round(workers, V, 1).makespan_s;
  const double t4 = schedule_multi_round(workers, V, 4).makespan_s;
  const double t16 = schedule_multi_round(workers, V, 16).makespan_s;
  EXPECT_LT(t4, t1);
  EXPECT_LE(t16, t4 * 1.05);
}

TEST(MultiRound, StartupCostsPunishExcessiveRounds) {
  std::vector<DltWorker> workers;
  for (int i = 0; i < 3; ++i)
    workers.push_back({5.0, 0.01, ComputeTime::constant_rate(0.1), 1e18});
  const double V = 100.0;
  const double t2 = schedule_multi_round(workers, V, 2).makespan_s;
  const double t50 = schedule_multi_round(workers, V, 50).makespan_s;
  EXPECT_GT(t50, t2);  // 50 startups per worker dominate
}

TEST(MultiRound, InstallmentsSidestepOutOfCorePenalty) {
  // One worker whose memory holds 40 units: a single 100-unit share pays
  // the 10x out-of-core rate; four 25-unit installments stay in core.
  const DltWorker w{0.0, 0.05, ComputeTime::out_of_core(1.0, 40.0, 10.0),
                    1e18};
  const std::vector<DltWorker> workers{w};
  const double t1 = schedule_multi_round(workers, 100.0, 1).makespan_s;
  const double t4 = schedule_multi_round(workers, 100.0, 4).makespan_s;
  EXPECT_LT(t4, 0.5 * t1);
}

TEST(MultiRound, SharesSumToLoadAndValidate) {
  std::vector<DltWorker> workers{
      {0.0, 0.1, ComputeTime::constant_rate(1.0), 1e18},
      {0.0, 0.2, ComputeTime::constant_rate(2.0), 1e18}};
  const DltMultiSchedule s = schedule_multi_round(workers, 777.0, 7);
  ASSERT_TRUE(s.feasible);
  EXPECT_NEAR(std::accumulate(s.shares.begin(), s.shares.end(), 0.0), 777.0,
              1e-6 * 777.0);
  EXPECT_THROW(schedule_multi_round(workers, 10.0, 0), std::invalid_argument);
}

TEST(Dlt, OptimizeOrderNearBruteForceOnSmallInstances) {
  // p = 4: enumerate all 24 permutations and confirm the heuristic's order
  // lands within 10% of the true best makespan.
  std::vector<DltWorker> workers;
  workers.push_back({0.02, 0.5, ComputeTime::constant_rate(1.2), 1e18});
  workers.push_back({0.01, 0.1, ComputeTime::constant_rate(2.5), 1e18});
  workers.push_back({0.03, 0.3, ComputeTime::constant_rate(0.6), 1e18});
  workers.push_back({0.00, 0.9, ComputeTime::constant_rate(1.9), 1e18});
  const double V = 150.0;

  std::vector<std::size_t> perm{0, 1, 2, 3};
  double best = std::numeric_limits<double>::infinity();
  do {
    std::vector<DltWorker> arranged;
    for (const std::size_t i : perm) arranged.push_back(workers[i]);
    best = std::min(best, schedule_single_round(arranged, V).makespan_s);
  } while (std::next_permutation(perm.begin(), perm.end()));

  const auto order = optimize_order(workers, V);
  std::vector<DltWorker> chosen;
  for (const std::size_t i : order) chosen.push_back(workers[i]);
  const double got = schedule_single_round(chosen, V).makespan_s;
  EXPECT_LE(got, best * 1.10);
}

TEST(Dlt, WorkerFromSpeedFunctionEncodesPaging) {
  const auto e = fpm::test::stepped_ensemble(1);
  const core::SpeedFunction& f = *e.owned[0];
  const double memory = f.max_size() * 0.1;  // the curve's paging knee area
  const DltWorker w = worker_from_speed_function(f, memory, 2.0, 1e-4, 1e-7);
  ASSERT_EQ(w.compute.knots.size(), 2u);
  EXPECT_DOUBLE_EQ(w.compute.knots[1], memory);
  EXPECT_GE(w.compute.slopes[1], w.compute.slopes[0]);
  EXPECT_THROW(worker_from_speed_function(f, 0.0, 1.0, 0.0, 0.0),
               std::invalid_argument);
}

TEST(Dlt, FunctionalModelAndDltAgreeOnComputeBoundStar) {
  // With free links and no memory pressure within the shares, DLT's
  // simultaneous-finish solution and the FPM partitioner coincide (both
  // equalize x_i / speed_i).
  const auto e = fpm::test::constant_ensemble(3);  // speeds 100,150,200
  std::vector<DltWorker> workers;
  for (const auto& f : e.owned)
    workers.push_back({0.0, 0.0,
                       ComputeTime::constant_rate(1.0 / f->speed(1.0)), 1e18});
  const DltSchedule s = schedule_single_round(workers, 9000.0);
  const core::Distribution d =
      core::partition_combined(e.list(), 9000).distribution;
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(s.shares[i], static_cast<double>(d.counts[i]), 1.5) << i;
}

}  // namespace
}  // namespace fpm::dlt
