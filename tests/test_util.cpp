// Unit tests for the util substrate: RNG determinism and distribution
// sanity, statistics helpers, the matrix container, and table formatting.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "util/cli.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace fpm::util {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(0, 7);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 7);
    saw_lo |= v == 0;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalHasRightMoments) {
  Rng rng(13);
  std::vector<double> xs(20000);
  for (double& x : xs) x = rng.normal(10.0, 2.0);
  EXPECT_NEAR(mean(xs), 10.0, 0.1);
  EXPECT_NEAR(stddev(xs), 2.0, 0.1);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(42);
  Rng c1 = parent.split();
  Rng c2 = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (c1() == c2());
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitIsReproducible) {
  Rng p1(42), p2(42);
  Rng a = p1.split();
  Rng b = p2.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a(), b());
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), 1.2909944, 1e-6);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{5.0}), 0.0);
}

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Stats, PercentileInterpolatesBetweenOrderStatistics) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), median(xs));
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 1.75);
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{7.0}, 99.0), 7.0);
  // Out-of-range quantiles clamp rather than read out of bounds.
  EXPECT_DOUBLE_EQ(percentile(xs, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 250.0), 4.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 7.0);
}

TEST(Stats, FitLineRecoversExactLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 10; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 2.0 * i);
  }
  const LinearFit f = fit_line(xs, ys);
  EXPECT_NEAR(f.intercept, 3.0, 1e-9);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(Stats, RelDiff) {
  EXPECT_DOUBLE_EQ(rel_diff(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(rel_diff(100.0, 110.0), 10.0 / 110.0);
}

TEST(Stats, GeometricMean) {
  EXPECT_NEAR(geometric_mean(std::vector<double>{1.0, 4.0}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(geometric_mean({}), 0.0);
}

TEST(Stats, Linspace) {
  const auto v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
  EXPECT_EQ(linspace(2.0, 9.0, 1), std::vector<double>{2.0});
}

TEST(Matrix, IndexingAndRows) {
  MatrixD m(2, 3);
  m(0, 0) = 1.0;
  m(1, 2) = 5.0;
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.row(1)[2], 5.0);
  EXPECT_DOUBLE_EQ(m.flat()[0], 1.0);
}

TEST(Matrix, SliceAndPasteRoundTrip) {
  MatrixD m(4, 2);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 2; ++c) m(r, c) = static_cast<double>(r * 2 + c);
  const MatrixD slice = m.slice_rows(1, 2);
  EXPECT_EQ(slice.rows(), 2u);
  EXPECT_DOUBLE_EQ(slice(0, 1), 3.0);
  MatrixD dst(4, 2);
  dst.paste_rows(1, slice);
  EXPECT_DOUBLE_EQ(dst(2, 0), 4.0);
  EXPECT_DOUBLE_EQ(dst(0, 0), 0.0);
}

TEST(Matrix, Transpose) {
  MatrixD m(2, 3);
  m(0, 2) = 7.0;
  const MatrixD t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 0), 7.0);
}

TEST(Matrix, MaxAbsDiff) {
  MatrixD a(2, 2), b(2, 2);
  a(1, 1) = 3.0;
  b(1, 1) = 5.5;
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 2.5);
}

TEST(Table, AlignedOutputContainsAllCells) {
  Table t("Demo", {"col_a", "b"});
  t.add_row({"1", "2.5"});
  t.add_row({"long-cell", "x"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("col_a"), std::string::npos);
  EXPECT_NE(s.find("long-cell"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvOutput) {
  Table t("", {"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(static_cast<std::size_t>(42)), "42");
}

TEST(CliArgs, ParsesFlagsAndSwitchesInAnyOrder) {
  const char* argv[] = {"prog", "cmd",  "--n",   "100",
                        "--csv", "--models", "x.fpm"};
  const CliArgs args(7, argv, {"--csv"});
  EXPECT_EQ(args.require("--n"), "100");
  EXPECT_EQ(args.require("--models"), "x.fpm");
  EXPECT_TRUE(args.flag("--csv"));
  EXPECT_FALSE(args.flag("--other"));
  EXPECT_EQ(args.get("--other"), std::nullopt);
}

TEST(CliArgs, NumberParsingAndFallback) {
  const char* argv[] = {"prog", "cmd", "--epsilon", "0.25"};
  const CliArgs args(4, argv);
  EXPECT_DOUBLE_EQ(args.number("--epsilon", 0.1), 0.25);
  EXPECT_DOUBLE_EQ(args.number("--missing", 0.1), 0.1);
}

TEST(CliArgs, RejectsMalformedInput) {
  const char* no_dash[] = {"prog", "cmd", "value"};
  EXPECT_THROW(CliArgs(3, no_dash), std::invalid_argument);
  const char* missing_value[] = {"prog", "cmd", "--n"};
  EXPECT_THROW(CliArgs(3, missing_value), std::invalid_argument);
  const char* bad_number[] = {"prog", "cmd", "--n", "12abc"};
  const CliArgs args(4, bad_number);
  EXPECT_THROW(args.number("--n", 0.0), std::invalid_argument);
  EXPECT_THROW(args.require("--missing"), std::invalid_argument);
}

TEST(ParseInt64, AcceptsPlainNonNegativeIntegers) {
  EXPECT_EQ(parse_int64("0", "--n"), 0);
  EXPECT_EQ(parse_int64("100", "--n"), 100);
  EXPECT_EQ(parse_int64("9223372036854775807", "--n"),
            std::numeric_limits<std::int64_t>::max());
}

TEST(ParseInt64, RejectsGarbageFractionsNegativesAndOverflow) {
  // The regression this guards: --n used to go through stod + truncation,
  // silently accepting "100abc" (as 100) and "12.7" (as 12).
  EXPECT_THROW(parse_int64("100abc", "--n"), std::invalid_argument);
  EXPECT_THROW(parse_int64("12.7", "--n"), std::invalid_argument);
  EXPECT_THROW(parse_int64("1e6", "--n"), std::invalid_argument);
  EXPECT_THROW(parse_int64("-5", "--n"), std::invalid_argument);
  EXPECT_THROW(parse_int64("", "--n"), std::invalid_argument);
  EXPECT_THROW(parse_int64("abc", "--n"), std::invalid_argument);
  EXPECT_THROW(parse_int64("9223372036854775808", "--n"),
               std::invalid_argument);
  try {
    parse_int64("12.7", "--repeat");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string(err.what()).find("--repeat"), std::string::npos);
  }
}

TEST(ParseDouble, AcceptsFiniteLiterals) {
  EXPECT_DOUBLE_EQ(parse_double("0.25", "--epsilon"), 0.25);
  EXPECT_DOUBLE_EQ(parse_double("-3", "--shift"), -3.0);
  EXPECT_DOUBLE_EQ(parse_double("1e6", "--at"), 1e6);
}

TEST(ParseDouble, RejectsGarbageAndNonFiniteValues) {
  EXPECT_THROW(parse_double("1.5x", "--at"), std::invalid_argument);
  EXPECT_THROW(parse_double("", "--at"), std::invalid_argument);
  EXPECT_THROW(parse_double("abc", "--at"), std::invalid_argument);
  EXPECT_THROW(parse_double("nan", "--at"), std::invalid_argument);
  EXPECT_THROW(parse_double("inf", "--at"), std::invalid_argument);
  EXPECT_THROW(parse_double("-inf", "--at"), std::invalid_argument);
  EXPECT_THROW(parse_double("1e999", "--at"), std::invalid_argument);
  try {
    parse_double("0.5garbage", "--single-number");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string(err.what()).find("--single-number"),
              std::string::npos);
  }
}

TEST(CliArgs, NumberParsingIsStrict) {
  const char* argv[] = {"prog", "cmd", "--epsilon", "0.25nonsense"};
  const CliArgs args(4, argv);
  EXPECT_THROW(args.number("--epsilon", 0.1), std::invalid_argument);
}

TEST(CliArgs, IntegerParsingStrictWithFallback) {
  const char* argv[] = {"prog", "cmd", "--repeat", "250", "--n", "12.7"};
  const CliArgs args(6, argv);
  EXPECT_EQ(args.integer("--repeat", 1), 250);
  EXPECT_EQ(args.integer("--missing", 7), 7);
  EXPECT_THROW(args.integer("--n", 1), std::invalid_argument);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(t.seconds(), 0.0);
  EXPECT_GT(t.micros(), t.seconds());  // unit sanity
}

}  // namespace
}  // namespace fpm::util
