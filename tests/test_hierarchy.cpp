// Tests for hierarchical partitioning: the aggregate speed function's
// shape requirement and semantics, the flat-equivalence property, and the
// two-level distribution invariants.
#include <gtest/gtest.h>

#include <numeric>

#include "core/hierarchy.hpp"
#include "core/combined.hpp"
#include "core/finetune.hpp"
#include "helpers.hpp"

namespace fpm::core {
namespace {

TEST(AggregateSpeed, SingleMemberBehavesLikeTheMember) {
  const auto e = fpm::test::power_ensemble(1);
  const AggregateSpeed agg({e.owned[0].get()});
  const SpeedFunction& m = *e.owned[0];
  for (double x = 100.0; x < m.max_size(); x *= 3.0)
    EXPECT_NEAR(agg.speed(x), m.speed(x), 1e-6 * m.speed(x)) << x;
}

TEST(AggregateSpeed, SatisfiesShapeRequirement) {
  for (const auto& e : fpm::test::all_ensembles(4)) {
    if (e.name == "exp-decay") continue;  // ratios span ~300 decades; the
                                          // sampled check loses precision
    const AggregateSpeed agg(e.list());
    EXPECT_TRUE(satisfies_shape_requirement(agg)) << e.name;
  }
}

TEST(AggregateSpeed, ConstantMembersSumTheirSpeeds) {
  const ConstantSpeed a(100.0, 1e9), b(150.0, 1e9), c(250.0, 1e9);
  const AggregateSpeed agg({&a, &b, &c});
  // A group of constant-speed machines is a constant 500-speed machine.
  for (double x = 10.0; x < 1e8; x *= 10.0)
    EXPECT_NEAR(agg.speed(x), 500.0, 1e-6 * 500.0) << x;
}

TEST(AggregateSpeed, IntersectIsGroupTotalAtThatSlope) {
  const auto e = fpm::test::linear_ensemble(3);
  const AggregateSpeed agg(e.list());
  for (const double c : {1e-6, 1e-5, 1e-4}) {
    EXPECT_NEAR(agg.intersect(c), total_size_at(e.list(), c),
                1e-9 * total_size_at(e.list(), c))
        << c;
    // Consistency: speed at that size divided by the size gives the slope.
    const double x = agg.intersect(c);
    EXPECT_NEAR(agg.speed(x) / x, c, 1e-6 * c);
  }
}

TEST(AggregateSpeed, RejectsBadGroups) {
  EXPECT_THROW(AggregateSpeed({}), std::invalid_argument);
  EXPECT_THROW(AggregateSpeed({nullptr}), std::invalid_argument);
}

TEST(Hierarchical, MatchesFlatPartitioningAcrossFamilies) {
  // The headline property: two-level with exact aggregates == flat optimal
  // (up to integer rounding slack).
  for (const auto& e : fpm::test::all_ensembles(6)) {
    const SpeedList flat_list = e.list();
    // Groups: {0,1}, {2,3,4}, {5}.
    const std::vector<SpeedList> groups{
        {flat_list[0], flat_list[1]},
        {flat_list[2], flat_list[3], flat_list[4]},
        {flat_list[5]}};
    const std::int64_t n = 1000003;
    const HierarchicalResult two_level = partition_hierarchical(groups, n);
    const auto flat_counts = two_level.flatten();
    ASSERT_EQ(flat_counts.size(), 6u) << e.name;
    EXPECT_EQ(std::accumulate(flat_counts.begin(), flat_counts.end(),
                              std::int64_t{0}),
              n)
        << e.name;

    Distribution as_flat;
    as_flat.counts = flat_counts;
    const Distribution best = exact_optimum(flat_list, n);
    // Allow a few elements of rounding slack across the two levels.
    double slack = 0.0;
    for (std::size_t i = 0; i < flat_list.size(); ++i) {
      const double x = static_cast<double>(best.counts[i]);
      slack = std::max(slack, 4.0 * (flat_list[i]->time(x + 1.0) -
                                     flat_list[i]->time(x)));
    }
    EXPECT_LE(makespan(flat_list, as_flat),
              makespan(flat_list, best) * 1.001 + slack)
        << e.name;
  }
}

TEST(Hierarchical, GroupCountsSumAndWithinSumsMatch) {
  const auto e = fpm::test::mixed_ensemble();
  const SpeedList list = e.list();
  const std::vector<SpeedList> groups{{list[0], list[1], list[2]},
                                      {list[3], list[4]}};
  const HierarchicalResult r = partition_hierarchical(groups, 777777);
  ASSERT_EQ(r.group_counts.size(), 2u);
  ASSERT_EQ(r.within.size(), 2u);
  EXPECT_EQ(r.group_counts[0] + r.group_counts[1], 777777);
  EXPECT_EQ(r.within[0].total(), r.group_counts[0]);
  EXPECT_EQ(r.within[1].total(), r.group_counts[1]);
  EXPECT_EQ(r.stats.algorithm, "hierarchical");
}

TEST(Hierarchical, EmptyShareGroupsGetZeroedDistributions) {
  // One overwhelming group and one feeble one with a tiny n: the feeble
  // group may receive nothing and must still produce a valid (zero)
  // within-distribution.
  const ConstantSpeed fast(1e6, 1e12);
  const ConstantSpeed slow(1.0, 1e12);
  const std::vector<SpeedList> groups{{&fast}, {&slow}};
  const HierarchicalResult r = partition_hierarchical(groups, 10);
  EXPECT_EQ(r.group_counts[0] + r.group_counts[1], 10);
  EXPECT_EQ(r.within[1].total(), r.group_counts[1]);
}

TEST(Hierarchical, RejectsEmptyInput) {
  EXPECT_THROW(partition_hierarchical({}, 10), std::invalid_argument);
}

TEST(Hierarchical, NestedAggregatesCompose) {
  // Aggregates are SpeedFunctions, so a group of groups works: compare a
  // two-deep aggregate against the flat aggregate of all members.
  const auto e = fpm::test::power_ensemble(4);
  const SpeedList list = e.list();
  const AggregateSpeed inner_a({list[0], list[1]});
  const AggregateSpeed inner_b({list[2], list[3]});
  const AggregateSpeed outer({&inner_a, &inner_b});
  const AggregateSpeed flat(list);
  for (double x = 1e4; x < flat.max_size() * 0.5; x *= 7.0)
    EXPECT_NEAR(outer.speed(x), flat.speed(x), 1e-4 * flat.speed(x)) << x;
}

}  // namespace
}  // namespace fpm::core
