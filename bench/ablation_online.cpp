// Ablation F: dynamic maintenance of the functional model (the open problem
// the paper names in §4). An iterative application runs 60 iterations on
// the Table-2 network; at iteration 15 a heavy external job lands on X3
// (the fastest machine) and at iteration 40 it leaves. Policies compared:
//   * static even distribution,
//   * static functional distribution (built offline, never updated),
//   * online rebalancing (models learned from iteration timings).
#include <iostream>

#include "balance/iterative_sim.hpp"
#include "common.hpp"

int main() {
  using namespace fpm;
  const std::vector<balance::DriftEvent> drift{{15, 2, 0.85}, {40, 2, 0.0}};

  balance::IterativeOptions opts;
  opts.n = 5'000'000;
  opts.iterations = 60;
  opts.flops_per_element = 200.0;

  util::Table t(
      "Ablation F - iterative app under background-load drift (60 iters)",
      {"policy", "total_s", "mean_iter_s", "worst_iter_s", "repartitions"});

  const auto run = [&](const char* name, balance::BalancePolicy policy) {
    auto cluster = sim::make_table2_cluster(2026);
    opts.policy = policy;
    const balance::IterativeResult r =
        balance::simulate_iterative(cluster, sim::kMatMul, opts, drift);
    double worst = 0.0;
    for (const double s : r.iteration_seconds) worst = std::max(worst, s);
    t.add_row({name, util::fmt(r.total_seconds, 1),
               util::fmt(r.total_seconds / opts.iterations, 2),
               util::fmt(worst, 2), util::fmt(r.repartitions)});
  };
  run("static-even", balance::BalancePolicy::StaticEven);
  run("static-functional", balance::BalancePolicy::StaticFunctional);
  run("online", balance::BalancePolicy::Online);

  bench::emit(t);
  std::cout << "Expected shape: static-functional beats static-even until "
               "the drift hits its favourite machine; online tracks the "
               "drift and wins overall with a handful of repartitions.\n";
  return 0;
}
