// Shared helpers for the benchmark harness: each binary regenerates one
// table or figure of the paper (see DESIGN.md §4) and prints it as an
// aligned text table plus CSV.
#pragma once

#include <cmath>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/fpm.hpp"
#include "simcluster/presets.hpp"
#include "util/table.hpp"

namespace fpm::bench {

/// Prints a table in both human and CSV form with a separating banner.
inline void emit(const util::Table& table) {
  table.print(std::cout);
  std::cout << "\n[csv]\n";
  table.print_csv(std::cout);
  std::cout << "\n";
}

/// Functional models for every machine of a cluster, built through the
/// paper's §3.1 procedure (the realistic pipeline: noisy measurements in).
struct BuiltModels {
  sim::ClusterModels models;
  core::SpeedList list() const { return models.list(); }
};

inline BuiltModels build_models(sim::SimulatedCluster& cluster,
                                const std::string& app) {
  return {sim::build_cluster_models(cluster, app)};
}

/// An analytic heterogeneous ensemble used by the ablations (owning).
struct OwnedEnsemble {
  std::vector<std::shared_ptr<const core::SpeedFunction>> owned;
  core::SpeedList list() const {
    core::SpeedList l;
    l.reserve(owned.size());
    for (const auto& f : owned) l.push_back(f.get());
    return l;
  }
};

/// Power-decay family (well-behaved polynomial slopes).
inline OwnedEnsemble power_family(std::size_t p) {
  OwnedEnsemble e;
  for (std::size_t i = 0; i < p; ++i)
    e.owned.push_back(std::make_shared<core::PowerDecaySpeed>(
        90.0 + 60.0 * static_cast<double>(i),
        2e7 * (1.0 + static_cast<double>(i)),
        0.8 + 0.3 * static_cast<double>(i % 3), 1e9));
  return e;
}

/// Exponential family (pathological for the basic algorithm): decay
/// constants spread geometrically over a fixed 27x range regardless of p,
/// which keeps the Figure-18 bracket exponentially wide in n.
inline OwnedEnsemble exp_family(std::size_t p) {
  OwnedEnsemble e;
  for (std::size_t i = 0; i < p; ++i) {
    const double t =
        p == 1 ? 0.0 : static_cast<double>(i) / static_cast<double>(p - 1);
    const double lambda = 5e3 * std::pow(27.0, t);
    e.owned.push_back(std::make_shared<core::ExpDecaySpeed>(
        150.0 + 30.0 * static_cast<double>(i), lambda, 2e6));
  }
  return e;
}

/// Stepped (cache/paging cliff) family.
inline OwnedEnsemble stepped_family(std::size_t p) {
  OwnedEnsemble e;
  for (std::size_t i = 0; i < p; ++i) {
    const double d = static_cast<double>(i);
    std::vector<core::SteppedSpeed::Step> steps;
    steps.push_back({3e5 * (1.0 + d), (220.0 + 40.0 * d) * 0.8, 1e5});
    steps.push_back({8e7 * (1.0 + 0.6 * d), (220.0 + 40.0 * d) * 0.05, 6e6});
    e.owned.push_back(std::make_shared<core::SteppedSpeed>(
        220.0 + 40.0 * d, std::move(steps), 8e8));
  }
  return e;
}

}  // namespace fpm::bench
