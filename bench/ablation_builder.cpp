// Ablation B: cost and accuracy of the §3.1 model-building procedure as a
// function of the accepted deviation epsilon and the per-point repetition
// count. The paper sets epsilon to ±5% and reports that 5 experimental
// points per processor sufficed; this ablation shows the probe-count /
// accuracy trade-off around that operating point.
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "core/builder.hpp"

int main() {
  using namespace fpm;

  util::Table t(
      "Ablation B - model-builder cost vs accuracy (12-machine mean)",
      {"epsilon", "samples_per_point", "mean_probes", "max_probes",
       "mean_abs_speed_err_pct"});

  for (const double eps : {0.02, 0.05, 0.10, 0.20}) {
    for (const int samples : {1, 3}) {
      auto cluster = sim::make_table2_cluster();
      // Generous probe budget so the trisection terminates by band
      // acceptance, making epsilon the binding knob.
      const sim::ClusterModels models = sim::build_cluster_models(
          cluster, sim::kMatMul, eps, samples, /*max_probes=*/2048);
      double probe_sum = 0.0;
      int probe_max = 0;
      double err_sum = 0.0;
      int err_count = 0;
      for (std::size_t i = 0; i < models.curves.size(); ++i) {
        probe_sum += models.probes[i];
        probe_max = std::max(probe_max, models.probes[i]);
        const auto& truth = cluster.ground_truth(i, sim::kMatMul);
        // Average relative error over the pre-paging range, where the model
        // drives load-balancing decisions.
        for (double x = truth.cache_capacity(); x < truth.paging_onset();
             x *= 1.5) {
          const double s_true = truth.speed(x);
          err_sum += std::abs(models.curves[i].speed(x) - s_true) / s_true;
          ++err_count;
        }
      }
      t.add_row({util::fmt(eps, 2), util::fmt(samples),
                 util::fmt(probe_sum / 12.0, 1), util::fmt(probe_max),
                 util::fmt(100.0 * err_sum / err_count, 1)});
    }
  }
  bench::emit(t);
  std::cout << "Expected shape: tighter epsilon => more probes and lower "
               "error; the paper's 5%/few-points operating point sits at "
               "single-digit error with a handful of probes.\n";
  return 0;
}
