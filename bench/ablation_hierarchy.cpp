// Ablation G: hierarchical vs flat partitioning at scale. For the global
// networks the paper's introduction motivates, partitioning site-by-site
// (across aggregate speed functions, then within each site) should match
// the flat optimum while cutting the top-level search size from p to
// #sites. Sweeps the total processor count with 12-machine sites built
// from the Table-2 models.
#include <iostream>

#include "common.hpp"
#include "core/hierarchy.hpp"
#include "util/timer.hpp"

int main() {
  using namespace fpm;
  auto cluster = sim::make_table2_cluster();
  const bench::BuiltModels built = bench::build_models(cluster, sim::kMatMul);

  // Curve pool: Table-2 models replicated with deterministic speed spread.
  std::vector<std::shared_ptr<const core::SpeedFunction>> pool;
  for (std::size_t i = 0; i < 1080; ++i) {
    auto curve = std::make_shared<core::PiecewiseLinearSpeed>(
        built.models.curves[i % built.models.curves.size()]);
    pool.push_back(std::make_shared<core::ScaledSpeed>(
        curve, 0.9 + 0.2 * static_cast<double>(i % 7) / 6.0));
  }

  util::Table t(
      "Ablation G - hierarchical vs flat partitioning (sites of 12)",
      {"p", "sites", "t_flat_ms", "t_hier_ms", "makespan_ratio"});

  const std::int64_t n = 2'000'000'000;
  for (const std::size_t p : {60u, 240u, 540u, 1080u}) {
    core::SpeedList flat;
    std::vector<core::SpeedList> sites;
    for (std::size_t i = 0; i < p; ++i) {
      flat.push_back(pool[i].get());
      if (i % 12 == 0) sites.emplace_back();
      sites.back().push_back(pool[i].get());
    }

    util::Timer timer;
    const core::PartitionResult flat_result =
        core::partition_combined(flat, n);
    const double t_flat = timer.seconds();

    timer.reset();
    const core::HierarchicalResult hier =
        core::partition_hierarchical(sites, n);
    const double t_hier = timer.seconds();

    core::Distribution hier_flat;
    hier_flat.counts = hier.flatten();
    const double ratio = core::makespan(flat, hier_flat) /
                         core::makespan(flat, flat_result.distribution);
    t.add_row({util::fmt(p), util::fmt(sites.size()),
               util::fmt(t_flat * 1e3, 2), util::fmt(t_hier * 1e3, 2),
               util::fmt(ratio, 4)});
  }
  bench::emit(t);
  std::cout << "Expected shape: makespan ratio ~1.000 at every scale — the "
               "aggregate construction is exact in the continuous limit. "
               "Serially the hierarchy costs more (every aggregate "
               "evaluation hides a nested line search); its value is "
               "decomposition: the top level sees only #sites virtual "
               "processors and each site's sub-problem is independent — "
               "solvable locally, in parallel, without sharing per-machine "
               "models across sites.\n";
  return 0;
}
