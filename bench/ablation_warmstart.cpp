// Warm-start drift ablation (core::PartitionHint): a Rebalancer-style
// workload where the speed models wobble by ~0.1% per round and n creeps,
// solved cold and with the previous round's slope carried as a hint
// (fingerprint 0, exactly how balance::Rebalancer carries it).
//
// The headline counter is PartitionStats::search_speed_evals — the
// search-phase speed evaluations, excluding the fine-tuning epilogue that
// costs the same ~1.5p evaluations no matter how the search started (see
// the field's doc comment). The warm bracket opens at 1 ± 2^-12 around the
// hinted slope, so a near-exact hint collapses the search to a handful of
// steps while the cold path pays the full Figure-18 bracket plus bisection.
//
// Written to BENCH_warmstart.json: per-policy cold/warm counter totals,
// wall-clock sweep times, warm-start hit/stale classification, and the
// process metrics registry (partition.warmstart.* included).
//
// `--gate` turns the sweep into a CI check: exit 1 when (a) any round's
// hinted distribution differs from the cold one (bit-identity is the
// contract), (b) the modified policy's search_speed_evals reduction drops
// below 3x, or (c) hinted total speed_evals exceed the cold totals for any
// policy — a hint must never cost more than it saves. All three are pure
// operation counts, deterministic for this fixed workload.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/fpm.hpp"
#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace {

using namespace fpm;

constexpr int kRounds = 30;
constexpr int kProcs = 16;
constexpr double kWobble = 0.001;  // 0.1% multiplicative model drift
constexpr std::int64_t kBaseN = 1'000'000;

/// The round-r ensemble: the bench power family with every speed scaled by
/// a slowly oscillating factor, the shape of a rebalancer re-learning its
/// curves from noisy round measurements.
bench::OwnedEnsemble drift_round(int r) {
  bench::OwnedEnsemble e;
  const double wob = 1.0 + kWobble * std::sin(0.7 * static_cast<double>(r));
  for (int i = 0; i < kProcs; ++i) {
    const double d = static_cast<double>(i);
    e.owned.push_back(std::make_shared<core::PowerDecaySpeed>(
        (90.0 + 60.0 * d) * wob, 2e7 * (1.0 + d), 0.8 + 0.3 * (i % 3), 1e9));
  }
  return e;
}

std::int64_t drift_n(int r) { return kBaseN + 37 * r; }

struct Workload {
  std::vector<bench::OwnedEnsemble> rounds;
  std::vector<core::SpeedList> lists;
  std::vector<std::int64_t> ns;
};

Workload make_workload() {
  Workload w;
  for (int r = 0; r < kRounds; ++r) {
    w.rounds.push_back(drift_round(r));
    w.lists.push_back(w.rounds.back().list());
    w.ns.push_back(drift_n(r));
  }
  return w;
}

struct SweepStats {
  std::int64_t search_evals = 0;
  std::int64_t total_evals = 0;
  std::int64_t iterations = 0;
  int hits = 0;
  int stale = 0;
};

struct SweepOutcome {
  SweepStats cold;
  SweepStats warm;
  bool identical = true;
};

void accumulate(SweepStats& s, const core::PartitionStats& stats) {
  s.search_evals += stats.search_speed_evals;
  s.total_evals += stats.speed_evals;
  s.iterations += stats.iterations;
  if (stats.warmstart == core::WarmStart::Hit) ++s.hits;
  if (stats.warmstart == core::WarmStart::Stale) ++s.stale;
}

/// Every round solved both ways so the distributions can be compared
/// element for element; the hint is refreshed from the hinted run, exactly
/// the chain a production caller would build.
SweepOutcome run_drift_sweep(const Workload& w, const std::string& algorithm) {
  SweepOutcome out;
  std::optional<core::PartitionHint> hint;
  for (int r = 0; r < kRounds; ++r) {
    core::PartitionPolicy cold_policy;
    cold_policy.algorithm = algorithm;
    const core::PartitionResult cold =
        core::partition(w.lists[r], w.ns[r], cold_policy);
    core::PartitionPolicy warm_policy = cold_policy;
    warm_policy.hint = hint;
    const core::PartitionResult warm =
        core::partition(w.lists[r], w.ns[r], warm_policy);
    out.identical &= warm.distribution.counts == cold.distribution.counts;
    accumulate(out.cold, cold.stats);
    accumulate(out.warm, warm.stats);
    // Fingerprint 0: the models legitimately change every round, so only
    // the bracket verification decides whether the slope is still good.
    core::PartitionHint next;
    next.slope = warm.stats.final_slope;
    next.n = w.ns[r];
    next.baseline_iterations = cold.stats.iterations;
    hint = next;
  }
  return out;
}

/// One timed pass over the whole sweep (cold or hint-carrying).
double sweep_once(const Workload& w, const std::string& algorithm,
                  bool carry_hint) {
  double acc = 0.0;
  std::optional<core::PartitionHint> hint;
  for (int r = 0; r < kRounds; ++r) {
    core::PartitionPolicy policy;
    policy.algorithm = algorithm;
    if (carry_hint) policy.hint = hint;
    const core::PartitionResult res =
        core::partition(w.lists[r], w.ns[r], policy);
    acc += static_cast<double>(res.distribution.counts[0]);
    if (carry_hint) {
      core::PartitionHint next;
      next.slope = res.stats.final_slope;
      next.n = w.ns[r];
      hint = next;
    }
  }
  return acc;
}

/// Best-of-`reps` wall time of `fn` (seconds), `inner` calls per rep.
template <typename Fn>
double best_of(int reps, int inner, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    util::Timer timer;
    for (int i = 0; i < inner; ++i) benchmark::DoNotOptimize(fn());
    best = std::min(best, timer.seconds() / inner);
  }
  return best;
}

void BM_DriftSweepCold(benchmark::State& state) {
  const Workload w = make_workload();
  for (auto _ : state)
    benchmark::DoNotOptimize(sweep_once(w, core::kAlgorithmModified, false));
}
BENCHMARK(BM_DriftSweepCold)->Unit(benchmark::kMillisecond);

void BM_DriftSweepWarm(benchmark::State& state) {
  const Workload w = make_workload();
  for (auto _ : state)
    benchmark::DoNotOptimize(sweep_once(w, core::kAlgorithmModified, true));
}
BENCHMARK(BM_DriftSweepWarm)->Unit(benchmark::kMillisecond);

double ratio(std::int64_t cold, std::int64_t warm) {
  return warm > 0 ? static_cast<double>(cold) / static_cast<double>(warm)
                  : std::numeric_limits<double>::infinity();
}

}  // namespace

int main(int argc, char** argv) {
  bool gate = false;
  std::string out = "BENCH_warmstart.json";
  // Strip our own flags before google-benchmark sees (and rejects) them.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gate") == 0)
      gate = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out = argv[++i];
    else
      argv[kept++] = argv[i];
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const Workload w = make_workload();
  const std::vector<std::string> policies{core::kAlgorithmModified,
                                          core::kAlgorithmCombined};

  util::Table t("warm-start drift ablation (" + util::fmt(kRounds) +
                    " rounds, p=" + util::fmt(kProcs) + ")",
                {"metric", "cold", "hinted", "improvement"});
  std::ofstream json(out);
  json << "{\n  \"rounds\": " << kRounds << ", \"procs\": " << kProcs
       << ", \"wobble\": " << kWobble << ",\n  \"policies\": [";

  bool ok = true;
  for (std::size_t pi = 0; pi < policies.size(); ++pi) {
    const std::string& alg = policies[pi];
    const SweepOutcome o = run_drift_sweep(w, alg);
    const double t_cold = best_of(5, 1, [&] { return sweep_once(w, alg, false); });
    const double t_warm = best_of(5, 1, [&] { return sweep_once(w, alg, true); });
    const double search_ratio = ratio(o.cold.search_evals, o.warm.search_evals);

    t.add_row({alg + ": search speed evals", util::fmt(o.cold.search_evals),
               util::fmt(o.warm.search_evals),
               util::fmt(search_ratio, 2) + "x"});
    t.add_row({alg + ": total speed evals", util::fmt(o.cold.total_evals),
               util::fmt(o.warm.total_evals),
               util::fmt(ratio(o.cold.total_evals, o.warm.total_evals), 2) +
                   "x"});
    t.add_row({alg + ": iterations", util::fmt(o.cold.iterations),
               util::fmt(o.warm.iterations),
               util::fmt(ratio(o.cold.iterations, o.warm.iterations), 2) +
                   "x"});
    t.add_row({alg + ": sweep wall time (ms)", util::fmt(t_cold * 1e3, 3),
               util::fmt(t_warm * 1e3, 3),
               util::fmt(t_cold / t_warm, 2) + "x"});
    t.add_row({alg + ": warm hits / stale", "-",
               util::fmt(o.warm.hits) + " / " + util::fmt(o.warm.stale),
               o.identical ? "bit-identical" : "MISMATCH"});

    json << (pi ? ", " : "") << "{\"algorithm\": \"" << alg << "\""
         << ", \"cold_search_speed_evals\": " << o.cold.search_evals
         << ", \"warm_search_speed_evals\": " << o.warm.search_evals
         << ", \"search_eval_ratio\": " << search_ratio
         << ", \"cold_speed_evals\": " << o.cold.total_evals
         << ", \"warm_speed_evals\": " << o.warm.total_evals
         << ", \"cold_iterations\": " << o.cold.iterations
         << ", \"warm_iterations\": " << o.warm.iterations
         << ", \"cold_sweep_s\": " << t_cold
         << ", \"warm_sweep_s\": " << t_warm
         << ", \"warm_hits\": " << o.warm.hits
         << ", \"warm_stale\": " << o.warm.stale
         << ", \"bit_identical\": " << (o.identical ? "true" : "false")
         << "}";

    if (!o.identical) {
      std::cerr << "GATE FAIL: " << alg
                << " hinted distribution differs from the cold one\n";
      ok = false;
    }
    if (alg == core::kAlgorithmModified && search_ratio < 3.0) {
      std::cerr << "GATE FAIL: " << alg << " search_speed_evals reduction "
                << util::fmt(search_ratio, 2) << "x < 3x\n";
      ok = false;
    }
    if (o.warm.total_evals > o.cold.total_evals) {
      std::cerr << "GATE FAIL: " << alg << " hinted speed_evals "
                << o.warm.total_evals << " exceed cold " << o.cold.total_evals
                << "\n";
      ok = false;
    }
  }
  json << "],\n  \"metrics\": " << obs::metrics().to_json() << "}\n";
  bench::emit(t);
  std::cout << "wrote " << out << "\n";

  // Bit-identity is the library's contract, not a tunable: fail on a
  // mismatch even without --gate.
  if (!ok && gate) return 1;
  if (gate) std::cout << "gate passed\n";
  return ok ? 0 : 1;
}
