// Ablation C: the communication-aware extension (the paper's stated future
// work, §1). Sweeps the network rate of a uniform switched network and
// compares compute-only partitioning against the comm-aware variant under
// the serialized-Ethernet schedule: as the network slows, the comm-aware
// plan concentrates work at the root and wins by a growing margin.
#include <iostream>

#include "comm/model.hpp"
#include "common.hpp"

int main() {
  using namespace fpm;
  auto cluster = sim::make_table2_cluster();
  const bench::BuiltModels built = bench::build_models(cluster, sim::kMatMul);
  const core::SpeedList models = built.list();

  const std::int64_t n = 50000000;  // elements scattered from the root
  comm::CommAwareProblem prob;
  prob.root = 2;  // X3, the fast bigmem server
  prob.bytes_per_element = 8.0;
  prob.flops_per_element = 200.0;

  util::Table t(
      "Ablation C - comm-aware vs compute-only partitioning (serialized "
      "Ethernet)",
      {"rate_MB_per_s", "t_compute_only_s", "t_comm_aware_s", "gain",
       "root_share_pct"});

  for (const double rate_mb : {1000.0, 100.0, 12.5, 3.0, 1.0}) {
    const comm::CommModel net =
        comm::CommModel::uniform(models.size(), {1e-4, rate_mb * 1e6});
    const core::Distribution naive =
        core::partition_combined(models, n).distribution;
    const auto aware = comm::partition_comm_aware(models, n, net, prob);
    const core::Distribution refined =
        comm::refine_serialized(models, aware.distribution, net, prob);
    // Both plans are scheduled with the longest-computation-first send
    // order, so the comparison isolates the partitioning decision.
    const auto order_naive = comm::optimize_send_order(models, naive, net, prob);
    const auto order_aware =
        comm::optimize_send_order(models, refined, net, prob);
    const double t_naive = comm::serialized_makespan_seconds_ordered(
        models, naive, net, prob, order_naive);
    const double t_aware = comm::serialized_makespan_seconds_ordered(
        models, refined, net, prob, order_aware);
    const double root_share =
        100.0 * static_cast<double>(refined.counts[prob.root]) /
        static_cast<double>(n);
    t.add_row({util::fmt(rate_mb, 1), util::fmt(t_naive, 2),
               util::fmt(t_aware, 2), util::fmt(t_naive / t_aware, 2),
               util::fmt(root_share, 1)});
  }
  bench::emit(t);
  std::cout << "Expected shape: gain ~1 on a fast network, growing as the "
               "network slows while the root's share rises.\n";
  return 0;
}
