// Figure 22(a): speedup of the striped matrix multiplication on the
// twelve-machine Table-2 network — execution time under the single-number
// model divided by execution time under the functional model, for
// n = 15000..31000. Two baselines, as in the paper: single-number speeds
// measured at a 500x500 reference and at a 4000x4000 reference.
//
// Pipeline fidelity: the functional models are *built* from noisy simulated
// measurements with the §3.1 trisection procedure (not read off the ground
// truth); execution is simulated with fluctuation-band sampling.
#include <iostream>

#include "apps/striped_mm.hpp"
#include "common.hpp"

int main() {
  using namespace fpm;
  auto cluster = sim::make_table2_cluster();
  const bench::BuiltModels built = bench::build_models(cluster, sim::kMatMul);
  const core::SpeedList models = built.list();

  util::Table t(
      "Figure 22(a) - striped MM speedup: single-number model over "
      "functional model",
      {"n", "t_functional_s", "t_single500_s", "t_single4000_s",
       "speedup_ref500", "speedup_ref4000"});

  for (std::int64_t n = 15000; n <= 31000; n += 2000) {
    const auto func =
        apps::plan_striped_mm(models, n, apps::ModelKind::Functional);
    const auto s500 =
        apps::plan_striped_mm(models, n, apps::ModelKind::SingleNumber, 500);
    const auto s4000 =
        apps::plan_striped_mm(models, n, apps::ModelKind::SingleNumber, 4000);
    const double tf =
        apps::simulate_striped_mm_seconds(cluster, sim::kMatMul, func, n, false);
    const double t5 =
        apps::simulate_striped_mm_seconds(cluster, sim::kMatMul, s500, n, false);
    const double t4 = apps::simulate_striped_mm_seconds(cluster, sim::kMatMul,
                                                        s4000, n, false);
    t.add_row({util::fmt(static_cast<long long>(n)), util::fmt(tf, 1),
               util::fmt(t5, 1), util::fmt(t4, 1), util::fmt(t5 / tf, 2),
               util::fmt(t4 / tf, 2)});
  }
  bench::emit(t);

  std::cout << "Model-building cost (probes per machine):";
  for (const int p : built.models.probes) std::cout << ' ' << p;
  std::cout << "\nExpected shape (paper Figure 22a): speedup >= 1 "
               "everywhere, growing with n as paging engages; the 500-ref "
               "baseline loses by more than the 4000-ref baseline.\n";
  return 0;
}
