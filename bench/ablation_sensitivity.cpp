// Ablation H: how wrong can the model be before the distribution suffers?
// The paper motivates performance *bands* (±5-40% fluctuation); this
// ablation quantifies the downstream cost of model error: each machine's
// curve is perturbed by a deterministic per-machine bias of ±E%, the
// partition is computed from the perturbed models, and the makespan is
// evaluated on the true curves. Also locates the break-even against the
// single-number baseline: how much model error the functional approach
// tolerates before losing its advantage.
#include <cmath>
#include <iostream>
#include <memory>

#include "common.hpp"

int main() {
  using namespace fpm;
  auto cluster = sim::make_table2_cluster();
  const core::SpeedList truth = cluster.ground_truth_list(sim::kMatMul);
  const std::int64_t n = 600'000'000;  // elements, deep into paging mix

  const double t_ideal =
      core::makespan(truth, core::partition_combined(truth, n).distribution);
  const double t_single = core::makespan(
      truth, core::partition_single_number_at(
                 truth, n, sim::mm_problem_size(500)));

  util::Table t(
      "Ablation H - makespan cost of model error (true-curve evaluation)",
      {"bias_pct", "t_perturbed_over_ideal", "still_beats_single500"});
  for (const double bias : {0.0, 0.05, 0.10, 0.20, 0.40, 0.80}) {
    // Alternating per-machine bias: worst case for proportionality.
    std::vector<std::shared_ptr<const core::SpeedFunction>> owned;
    core::SpeedList perturbed;
    for (std::size_t i = 0; i < truth.size(); ++i) {
      const double factor = (i % 2 == 0) ? 1.0 + bias : 1.0 / (1.0 + bias);
      struct View final : core::SpeedFunction {
        const core::SpeedFunction* base;
        double f;
        double speed(double x) const override { return f * base->speed(x); }
        double max_size() const override { return base->max_size(); }
      };
      auto v = std::make_shared<View>();
      v->base = truth[i];
      v->f = factor;
      owned.push_back(v);
      perturbed.push_back(owned.back().get());
    }
    const core::Distribution d =
        core::partition_combined(perturbed, n).distribution;
    const double t_perturbed = core::makespan(truth, d);
    t.add_row({util::fmt(100.0 * bias, 0),
               util::fmt(t_perturbed / t_ideal, 3),
               t_perturbed < t_single ? "yes" : "no"});
  }
  bench::emit(t);
  std::cout << "single-number(500) baseline is " << util::fmt(t_single / t_ideal, 2)
            << "x the ideal makespan here.\n";
  std::cout << "Expected shape: graceful degradation — small biases cost a "
               "few percent; the functional approach keeps beating the "
               "single-number baseline until the model error rivals the "
               "size-dependence it captures.\n";
  return 0;
}
