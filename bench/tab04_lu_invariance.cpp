// Table 4: serial LU-factorization speed is (nearly) invariant to the
// matrix shape at a fixed element count — the LU analogue of Table 3,
// justifying square-matrix speed functions for the Variable Group Block
// distribution's non-square sub-problems.
#include <iostream>
#include <memory>

#include "common.hpp"
#include "core/surface.hpp"
#include "linalg/real_source.hpp"
#include "simcluster/presets.hpp"

int main() {
  using namespace fpm;

  // (a) Real host runs at shape ladders with constant n1*n2.
  util::Table real_t(
      "Table 4 (real host) - LU speed across equal-element shapes",
      {"shape_n1xn2", "elements", "MFlops"});
  for (const std::size_t base : {128u, 256u, 512u}) {
    for (int k = 0; k < 4; ++k) {
      const std::size_t n1 = base >> k;
      const std::size_t n2 = base << k;
      const double mflops = linalg::measure_lu_mflops(n1, n2);
      real_t.add_row({util::fmt(n1) + "x" + util::fmt(n2),
                      util::fmt(n1 * n2), util::fmt(mflops, 1)});
    }
  }
  bench::emit(real_t);

  // (b) Simulated X8 at the paper's exact Table-4 sizes.
  auto cluster = sim::make_table2_cluster();
  const std::size_t x8 = 7;
  struct Shared final : core::SpeedFunction {
    const core::SpeedFunction* f;
    double speed(double x) const override { return f->speed(x); }
    double max_size() const override { return f->max_size(); }
  };
  auto shared = std::make_shared<Shared>();
  shared->f = &cluster.ground_truth(x8, sim::kLu);
  const core::ShapeInvariantSurface surface(shared, 0.01);

  util::Table sim_t(
      "Table 4 (simulated X8) - LU speed across equal-element shapes",
      {"shape_n1xn2", "elements", "MFlops"});
  for (const long base : {1024L, 2304L, 4096L, 6400L}) {
    for (int k = 0; k < 4; ++k) {
      const long n1 = base >> k;
      const long n2 = base << k;
      const double speed = surface.speed(static_cast<double>(n1),
                                         static_cast<double>(n2));
      sim_t.add_row({util::fmt(n1) + "x" + util::fmt(n2),
                     util::fmt(n1 * n2), util::fmt(speed, 1)});
    }
  }
  bench::emit(sim_t);

  std::cout << "Expected shape (paper Table 4): equal-element groups agree "
               "to a few percent; absolute speeds grow slightly with size "
               "until paging.\n";
  return 0;
}
