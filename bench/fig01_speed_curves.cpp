// Figure 1 (and Table 1): absolute speed versus problem size for the three
// applications — ArrayOpsF, MatrixMultATLAS, MatrixMult — on the four
// heterogeneous computers of Table 1, with the paging point P of each
// machine. Expected shapes: ArrayOpsF and MatrixMultATLAS show plateaus
// with a sharp paging cliff; MatrixMult decays smoothly from the start.
#include <iostream>

#include "common.hpp"
#include "simcluster/presets.hpp"

namespace {

using namespace fpm;

void emit_table1(const std::vector<sim::SimulatedMachine>& machines) {
  util::Table t("Table 1 - specifications of four heterogeneous computers",
                {"machine", "os", "arch", "cpu_MHz", "main_kB", "cache_kB"});
  for (const auto& m : machines)
    t.add_row({m.spec.name, m.spec.os, m.spec.arch, util::fmt(m.spec.cpu_mhz, 0),
               util::fmt(m.spec.main_memory_kb), util::fmt(m.spec.cache_kb)});
  bench::emit(t);
}

void emit_curves(const std::vector<sim::SimulatedMachine>& machines,
                 const char* app) {
  util::Table t(std::string("Figure 1 - speed curves for ") + app,
                {"size_elements", "Comp1_MFlops", "Comp2_MFlops",
                 "Comp3_MFlops", "Comp4_MFlops"});
  // Sweep geometrically across the union of the modelled ranges.
  double max_b = 0.0;
  for (const auto& m : machines)
    max_b = std::max(max_b, m.apps.at(app)->max_size());
  for (double x = 4096.0; x <= max_b; x *= 1.9) {
    std::vector<std::string> row{util::fmt(x, 0)};
    for (const auto& m : machines)
      row.push_back(util::fmt(m.apps.at(app)->speed(x), 1));
    t.add_row(row);
  }
  bench::emit(t);

  util::Table pt(std::string("Figure 1 - paging points P for ") + app,
                 {"machine", "paging_onset_elements", "peak_MFlops"});
  for (const auto& m : machines) {
    const auto& f = *m.apps.at(app);
    pt.add_row({m.spec.name, util::fmt(f.paging_onset(), 0),
                util::fmt(f.peak_speed(), 1)});
  }
  bench::emit(pt);
}

}  // namespace

int main() {
  const auto machines = fpm::sim::table1_machines();
  emit_table1(machines);
  emit_curves(machines, fpm::sim::kArrayOps);
  emit_curves(machines, fpm::sim::kMatMulAtlas);
  emit_curves(machines, fpm::sim::kMatMul);
  std::cout << "Expected shape: plateaus with sharp paging cliffs for the two "
               "memory-efficient codes;\nsmooth strictly decreasing curve for "
               "the naive MatrixMult (paper Figure 1).\n";
  return 0;
}
