// Ablation E: the 2-D rectangular extension (paper §3.1's multi-parameter
// sketch). Compares the column-searched rectangular partition against 1-D
// horizontal strips on (a) the communication proxy — total half-perimeter —
// and (b) load balance, across processor counts on the Table-2 models.
#include <iostream>

#include "common.hpp"
#include "comm/model.hpp"
#include "core/rect2d.hpp"

int main() {
  using namespace fpm;
  auto cluster = sim::make_table2_cluster();
  const bench::BuiltModels built = bench::build_models(cluster, sim::kMatMul);

  util::Table t(
      "Ablation E - 2-D rectangles vs 1-D strips (grid 4096x4096)",
      {"p", "columns_chosen", "halfperim_2d", "halfperim_strips",
       "comm_reduction_pct", "max_load_imbalance_pct"});

  for (const std::size_t p : {2u, 4u, 6u, 9u, 12u}) {
    core::SpeedList speeds;
    for (std::size_t i = 0; i < p; ++i)
      speeds.push_back(&built.models.curves[i]);
    const std::int64_t g = 4096;
    const core::RectPartition best = core::partition_rectangles(speeds, g, g);
    core::Rect2dOptions strip_opts;
    strip_opts.force_columns = 1;
    const core::RectPartition strips =
        core::partition_rectangles(speeds, g, g, strip_opts);

    // Load imbalance of the realized 2-D tiling against the ideal areas.
    const core::Distribution ideal =
        core::partition_combined(speeds, g * g).distribution;
    double worst_imbalance = 0.0;
    for (std::size_t i = 0; i < p; ++i) {
      if (ideal.counts[i] == 0) continue;
      const double rel =
          std::abs(static_cast<double>(best.rects[i].area()) -
                   static_cast<double>(ideal.counts[i])) /
          static_cast<double>(ideal.counts[i]);
      worst_imbalance = std::max(worst_imbalance, rel);
    }
    const double reduction =
        100.0 *
        (1.0 - static_cast<double>(best.total_half_perimeter()) /
                   static_cast<double>(strips.total_half_perimeter()));
    t.add_row({util::fmt(p), util::fmt(best.columns),
               util::fmt(best.total_half_perimeter()),
               util::fmt(strips.total_half_perimeter()),
               util::fmt(reduction, 1), util::fmt(100.0 * worst_imbalance, 2)});
  }
  bench::emit(t);
  std::cout << "Expected shape: the 2-D arrangement cuts the communication "
               "proxy substantially once p has a non-trivial factorization, "
               "at a small load-imbalance cost.\n\n";

  // Second view: estimated wall time of one 2-D matrix-multiplication
  // epoch (compute share + half-perimeter communication) on 100 Mbit
  // Ethernet, 1-D strips vs 2-D rectangles over all 12 machines.
  util::Table t2(
      "Ablation E2 - estimated MM epoch time, strips vs rectangles "
      "(grid 4096x4096, 100 Mbit)",
      {"layout", "compute_s", "comm_s", "total_s"});
  const std::int64_t g = 4096;
  core::SpeedList speeds;
  for (std::size_t i = 0; i < 12; ++i)
    speeds.push_back(&built.models.curves[i]);
  const comm::CommModel net = comm::CommModel::uniform(12, {1e-4, 12.5e6});
  const double flops_per_element = 2.0 * static_cast<double>(g);

  const auto evaluate = [&](const core::RectPartition& part,
                            const char* name) {
    double compute = 0.0, comm_s = 0.0;
    for (std::size_t i = 0; i < part.rects.size(); ++i) {
      const core::Rect& r = part.rects[i];
      if (r.area() == 0) continue;
      const double x = static_cast<double>(r.area());
      compute = std::max(
          compute, x * flops_per_element / (speeds[i]->speed(x) * 1e6));
      // Each processor receives its half-perimeter times the matrix
      // dimension in elements per epoch (the A-row and B-column panels).
      const double bytes =
          static_cast<double>(r.half_perimeter()) * static_cast<double>(g) * 8.0;
      comm_s = std::max(comm_s, net.send_seconds((i + 1) % 12, i, bytes));
    }
    t2.add_row({name, util::fmt(compute, 2), util::fmt(comm_s, 2),
                util::fmt(compute + comm_s, 2)});
  };
  core::Rect2dOptions strips_only;
  strips_only.force_columns = 1;
  evaluate(core::partition_rectangles(speeds, g, g), "2-D rectangles");
  evaluate(core::partition_rectangles(speeds, g, g, strips_only),
           "1-D strips");
  bench::emit(t2);
  std::cout << "Expected shape: identical compute (same areas up to "
               "rounding), visibly lower comm for the 2-D layout.\n";
  return 0;
}
