// Figure 22(b): speedup of the LU factorization with the Variable Group
// Block distribution on the Table-2 network — single-number model execution
// time over functional-model execution time, for n = 16000..32000, with
// single-number references of 2000x2000 and 5000x5000 as in the paper.
#include <iostream>

#include "apps/lu_app.hpp"
#include "apps/vgb.hpp"
#include "common.hpp"

int main() {
  using namespace fpm;
  auto cluster = sim::make_table2_cluster();
  const bench::BuiltModels built = bench::build_models(cluster, sim::kLu);
  const core::SpeedList models = built.list();

  util::Table t(
      "Figure 22(b) - LU (Variable Group Block) speedup: single-number "
      "model over functional model",
      {"n", "t_functional_s", "t_single2000_s", "t_single5000_s",
       "speedup_ref2000", "speedup_ref5000"});

  for (std::int64_t n = 16000; n <= 32000; n += 2000) {
    apps::VgbOptions func;
    func.block = 128;
    apps::VgbOptions ref2000 = func;
    ref2000.model = apps::VgbModel::SingleNumber;
    ref2000.reference_n = 2000;
    apps::VgbOptions ref5000 = ref2000;
    ref5000.reference_n = 5000;

    const auto df = apps::variable_group_block(models, n, func);
    const auto d2 = apps::variable_group_block(models, n, ref2000);
    const auto d5 = apps::variable_group_block(models, n, ref5000);
    const double tf = apps::simulate_lu_seconds(cluster, sim::kLu, df, false);
    const double t2 = apps::simulate_lu_seconds(cluster, sim::kLu, d2, false);
    const double t5 = apps::simulate_lu_seconds(cluster, sim::kLu, d5, false);
    t.add_row({util::fmt(static_cast<long long>(n)), util::fmt(tf, 1),
               util::fmt(t2, 1), util::fmt(t5, 1), util::fmt(t2 / tf, 2),
               util::fmt(t5 / tf, 2)});
  }
  bench::emit(t);

  std::cout << "Expected shape (paper Figure 22b): speedup >= 1 everywhere; "
               "the small-reference baseline degrades more as n grows past "
               "the paging thresholds.\n";
  return 0;
}
