// Ablation A: basic vs modified vs combined partitioning across curve
// families and problem sizes — the design-space study behind DESIGN.md §5.
// Reports wall time (google-benchmark) and the iteration/intersection
// counts that drive the paper's complexity discussion: basic wins on
// polynomial-slope families, collapses on the exponential family; the
// combined algorithm tracks the winner on both.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common.hpp"
#include "core/fpm.hpp"

namespace {

using namespace fpm;

bench::OwnedEnsemble make_family(int id, std::size_t p) {
  switch (id) {
    case 0:
      return bench::power_family(p);
    case 1:
      return bench::stepped_family(p);
    default:
      return bench::exp_family(p);
  }
}

const char* family_name(int id) {
  switch (id) {
    case 0:
      return "power";
    case 1:
      return "stepped";
    default:
      return "exp";
  }
}

template <typename Partitioner>
void run_bench(benchmark::State& state, Partitioner partition) {
  const int family = static_cast<int>(state.range(0));
  const auto p = static_cast<std::size_t>(state.range(1));
  const std::int64_t n = state.range(2);
  const bench::OwnedEnsemble e = make_family(family, p);
  const core::SpeedList speeds = e.list();
  int iterations = 0;
  for (auto _ : state) {
    const core::PartitionResult r = partition(speeds, n);
    iterations = r.stats.iterations;
    benchmark::DoNotOptimize(r.distribution.counts.data());
  }
  state.counters["search_iters"] = iterations;
  state.SetLabel(family_name(family));
}

void BM_Basic(benchmark::State& state) {
  run_bench(state, [](const core::SpeedList& s, std::int64_t n) {
    return core::partition_basic(s, n);
  });
}
void BM_Modified(benchmark::State& state) {
  run_bench(state, [](const core::SpeedList& s, std::int64_t n) {
    return core::partition_modified(s, n);
  });
}
void BM_Combined(benchmark::State& state) {
  run_bench(state, [](const core::SpeedList& s, std::int64_t n) {
    return core::partition_combined(s, n);
  });
}
void BM_Interpolation(benchmark::State& state) {
  run_bench(state, [](const core::SpeedList& s, std::int64_t n) {
    return core::partition_interpolation(s, n);
  });
}

void configure(benchmark::internal::Benchmark* b) {
  b->ArgNames({"family", "p", "n"});
  for (const int family : {0, 1, 2})
    for (const std::int64_t n : {1000000LL, 100000000LL})
      b->Args({family, 12, n});
  b->Unit(benchmark::kMicrosecond);
}

}  // namespace

BENCHMARK(BM_Basic)->Apply(configure);
BENCHMARK(BM_Modified)->Apply(configure);
BENCHMARK(BM_Combined)->Apply(configure);
BENCHMARK(BM_Interpolation)->Apply(configure);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Iteration-count summary (the paper's complexity story at a glance).
  util::Table t("Ablation A - search iterations by family and algorithm",
                {"family", "n", "basic", "modified", "combined",
                 "interpolation", "combined_switched"});
  for (const int family : {0, 1, 2}) {
    for (const std::int64_t n : {1000000LL, 100000000LL}) {
      const bench::OwnedEnsemble e = make_family(family, 12);
      const core::SpeedList speeds = e.list();
      const auto rb = core::partition_basic(speeds, n);
      const auto rm = core::partition_modified(speeds, n);
      const auto rc = core::partition_combined(speeds, n);
      const auto ri = core::partition_interpolation(speeds, n);
      t.add_row({family_name(family), util::fmt(static_cast<long long>(n)),
                 util::fmt(rb.stats.iterations), util::fmt(rm.stats.iterations),
                 util::fmt(rc.stats.iterations), util::fmt(ri.stats.iterations),
                 rc.stats.switched_to_modified ? "yes" : "no"});
    }
  }
  bench::emit(t);
  std::cout << "Expected shape: basic ~ O(log n) iterations on power/stepped "
               "but blowing up on exp;\nmodified flat everywhere; combined "
               "tracking the better of the two; the\ninterpolation search "
               "(our candidate for the paper's open challenge) flat "
               "everywhere.\n";
  return 0;
}
