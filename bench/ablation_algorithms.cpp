// Ablation A: the partitioner family across curve families and problem
// sizes — the design-space study behind DESIGN.md §5. Every algorithm in
// core::partitioner_registry() is benchmarked through the policy engine,
// so a newly registered partitioner joins the ablation without edits here.
// Reports wall time (google-benchmark) and the iteration/intersection
// counts that drive the paper's complexity discussion: basic wins on
// polynomial-slope families, collapses on the exponential family; the
// combined algorithm tracks the winner on both.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/fpm.hpp"

namespace {

using namespace fpm;

bench::OwnedEnsemble make_family(int id, std::size_t p) {
  switch (id) {
    case 0:
      return bench::power_family(p);
    case 1:
      return bench::stepped_family(p);
    default:
      return bench::exp_family(p);
  }
}

const char* family_name(int id) {
  switch (id) {
    case 0:
      return "power";
    case 1:
      return "stepped";
    default:
      return "exp";
  }
}

/// The bounded algorithm derives per-processor bounds from the curves'
/// modelled ranges; an (ensemble, n) pair whose total capacity cannot hold
/// n is infeasible for it and is skipped rather than benchmarked.
bool capacity_holds(const core::SpeedList& speeds, std::int64_t n) {
  std::int64_t capacity = 0;
  for (const core::SpeedFunction* f : speeds)
    capacity += static_cast<std::int64_t>(std::ceil(f->max_size()));
  return capacity >= n;
}

void run_bench(benchmark::State& state, const std::string& algorithm) {
  const int family = static_cast<int>(state.range(0));
  const auto p = static_cast<std::size_t>(state.range(1));
  const std::int64_t n = state.range(2);
  const bench::OwnedEnsemble e = make_family(family, p);
  const core::SpeedList speeds = e.list();
  core::PartitionPolicy policy;
  policy.algorithm = algorithm;
  const bool needs_bounds =
      core::partitioner_registry().find(algorithm)->needs_bounds;
  if (needs_bounds && !capacity_holds(speeds, n)) {
    state.SkipWithError("curve capacity cannot hold n");
    return;
  }
  int iterations = 0;
  std::int64_t solves = 0;
  for (auto _ : state) {
    const core::PartitionResult r = core::partition(speeds, n, policy);
    iterations = r.stats.iterations;
    solves = r.stats.intersect_solves;
    benchmark::DoNotOptimize(r.distribution.counts.data());
  }
  state.counters["search_iters"] = iterations;
  state.counters["intersect_solves"] = static_cast<double>(solves);
  state.SetLabel(family_name(family));
}

void configure(benchmark::internal::Benchmark* b) {
  b->ArgNames({"family", "p", "n"});
  for (const int family : {0, 1, 2})
    for (const std::int64_t n : {1000000LL, 100000000LL})
      b->Args({family, 12, n});
  b->Unit(benchmark::kMicrosecond);
}

}  // namespace

int main(int argc, char** argv) {
  for (const core::PartitionerInfo& info :
       core::partitioner_registry().entries()) {
    benchmark::RegisterBenchmark(
        ("BM_" + info.id).c_str(),
        [id = info.id](benchmark::State& state) { run_bench(state, id); })
        ->Apply(configure);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Iteration-count summary (the paper's complexity story at a glance),
  // one column per registered algorithm. '-' marks infeasible cells
  // (bounded when the curves cannot hold n).
  std::vector<std::string> columns{"family", "n"};
  for (const core::PartitionerInfo& info :
       core::partitioner_registry().entries())
    columns.push_back(info.id);
  columns.push_back("combined_switched");
  util::Table t("Ablation A - search iterations by family and algorithm",
                columns);
  for (const int family : {0, 1, 2}) {
    for (const std::int64_t n : {1000000LL, 100000000LL}) {
      const bench::OwnedEnsemble e = make_family(family, 12);
      const core::SpeedList speeds = e.list();
      std::vector<std::string> row{family_name(family),
                                   util::fmt(static_cast<long long>(n))};
      bool switched = false;
      for (const core::PartitionerInfo& info :
           core::partitioner_registry().entries()) {
        if (info.needs_bounds && !capacity_holds(speeds, n)) {
          row.push_back("-");
          continue;
        }
        core::PartitionPolicy policy;
        policy.algorithm = info.id;
        const auto r = core::partition(speeds, n, policy);
        row.push_back(util::fmt(r.stats.iterations));
        if (info.id == core::kAlgorithmCombined)
          switched = r.stats.switched_to_modified;
      }
      row.push_back(switched ? "yes" : "no");
      t.add_row(row);
    }
  }
  bench::emit(t);
  std::cout << "Expected shape: basic ~ O(log n) iterations on power/stepped "
               "but blowing up on exp;\nmodified flat everywhere; combined "
               "tracking the better of the two; the\ninterpolation search "
               "(our candidate for the paper's open challenge) flat "
               "everywhere.\n";
  return 0;
}
