// Open-loop load generator for the SLO-aware PartitionServer
// (core/server.hpp): Poisson and bursty arrivals, Zipf-popular model
// fingerprints, a configurable deadline/priority mix, and two phases —
// sustainable load, then 2x-capacity overload — driven open-loop (arrivals
// never wait for completions, like real traffic).
//
// The run self-calibrates: a short closed-loop warmup measures the mean
// service time, capacity = threads / service_time, and the two phases
// offer `--load1` (default 0.8) and `--load2` (default 2.0) times that.
// Every outcome is collected and written to BENCH_loadgen.json: per-phase
// offered/admitted/degraded/shed accounting, goodput (answers meeting
// their deadline per second), latency percentiles, and a 100 ms completion
// trajectory. Degraded answers are sampled during the run and re-checked
// afterwards against a cold exact solve: the reported error bound must
// dominate the true relative makespan error.
//
// `--gate` turns the run into a CI check (exit 1 on violation):
//   1. accounting is exact in every phase: offered == admitted + degraded
//      + shed, with offered equal to the submitted request count;
//   2. overload goodput >= 80% of sustainable goodput (the server sheds
//      instead of queue-collapsing);
//   3. sustainable-phase p99 latency meets the request deadline;
//   4. every sampled degraded answer's bound dominates its true error.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/fpm.hpp"
#include "core/server.hpp"
#include "core/slo.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace fpm;
using Clock = std::chrono::steady_clock;

struct Config {
  unsigned threads = 0;           // 0 = hardware_concurrency
  double phase_s = 1.0;           // duration of each phase
  double deadline_ms = 20.0;      // per-request completion budget
  double load1 = 0.8;             // sustainable phase, x capacity
  double load2 = 2.0;             // overload phase, x capacity
  int fingerprints = 32;          // Zipf universe of distinct model lists
  double zipf_s = 1.1;            // popularity skew
  double max_rate = 250000.0;     // offered-rate ceiling (requests/s)
  std::uint64_t seed = 42;
  bool gate = false;
  std::string out = "BENCH_loadgen.json";
};

/// One model list of the fingerprint universe (owning).
struct Workload {
  std::vector<std::shared_ptr<const core::SpeedFunction>> owned;
  core::SpeedList list;
  std::int64_t base_n = 0;
};

std::vector<Workload> make_workloads(int count) {
  std::vector<Workload> w(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) {
    Workload& wk = w[static_cast<std::size_t>(k)];
    const double scale = 1.0 + 0.07 * k;
    for (int i = 0; i < 6; ++i) {
      wk.owned.push_back(std::make_shared<core::PowerDecaySpeed>(
          (90.0 + 60.0 * i) * scale, 2e7 * (1.0 + i), 0.8 + 0.3 * (i % 3),
          1e9));
    }
    for (const auto& f : wk.owned) wk.list.push_back(f.get());
    wk.base_n = 1000000 + 7919LL * k;
  }
  return w;
}

/// Zipf CDF over ranks 0..K-1 with exponent s.
std::vector<double> zipf_cdf(int count, double s) {
  std::vector<double> cdf(static_cast<std::size_t>(count));
  double total = 0.0;
  for (int i = 0; i < count; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf[static_cast<std::size_t>(i)] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

struct DegradedSample {
  int workload = 0;
  std::int64_t n = 0;
  std::vector<std::int64_t> counts;
  double bound = 0.0;
};

struct PhaseReport {
  std::string name;
  std::string arrivals;
  double offered_rate = 0.0;  // requests/s targeted
  std::int64_t submitted = 0;
  core::SloStats stats;  // deltas for this phase
  std::int64_t on_time = 0;
  double goodput = 0.0;  // on-time answers / phase duration
  double p50_ms = 0.0, p99_ms = 0.0;
  std::vector<std::int64_t> traj_completed;  // per 100 ms bucket
  std::vector<std::int64_t> traj_on_time;
  std::vector<std::int64_t> traj_shed;
};

core::SloStats delta(const core::SloStats& now, const core::SloStats& then) {
  core::SloStats d;
  d.offered = now.offered - then.offered;
  d.admitted = now.admitted - then.admitted;
  d.degraded = now.degraded - then.degraded;
  d.shed = now.shed - then.shed;
  d.shed_admission = now.shed_admission - then.shed_admission;
  d.shed_queue_full = now.shed_queue_full - then.shed_queue_full;
  d.shed_expired = now.shed_expired - then.shed_expired;
  d.shed_shutdown = now.shed_shutdown - then.shed_shutdown;
  d.deadline_misses = now.deadline_misses - then.deadline_misses;
  return d;
}

double percentile(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_ms.size() - 1));
  return sorted_ms[idx];
}

/// Runs one open-loop phase at `rate` requests/s. `bursty` modulates the
/// Poisson process with a 200 ms on/off cycle (3x for a quarter of the
/// period, 1/3x for the rest — same average, much deeper queues).
PhaseReport run_phase(core::PartitionServer& server,
                      const std::vector<Workload>& workloads,
                      const std::vector<double>& cdf, const Config& cfg,
                      double rate, bool bursty, const std::string& name,
                      std::vector<DegradedSample>& degraded_samples) {
  PhaseReport report;
  report.name = name;
  report.arrivals = bursty ? "bursty" : "poisson";
  report.offered_rate = rate;
  const std::size_t buckets =
      static_cast<std::size_t>(cfg.phase_s / 0.1) + 20;
  report.traj_completed.assign(buckets, 0);
  report.traj_on_time.assign(buckets, 0);
  report.traj_shed.assign(buckets, 0);

  const core::SloStats before = server.slo_stats();

  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::future<core::ServeResult>> pending;
  bool done_submitting = false;

  std::vector<double> latencies_ms;
  latencies_ms.reserve(static_cast<std::size_t>(rate * cfg.phase_s) + 16);
  std::int64_t on_time = 0, completed = 0;

  const Clock::time_point start = Clock::now();
  // Collector: drains futures in submission order so in-flight memory stays
  // bounded no matter how long the run is.
  std::thread collector([&] {
    for (;;) {
      std::future<core::ServeResult> f;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return done_submitting || !pending.empty(); });
        if (pending.empty()) return;
        f = std::move(pending.front());
        pending.pop_front();
      }
      const core::ServeResult r = f.get();
      const auto bucket = std::min(
          buckets - 1,
          static_cast<std::size_t>(
              std::chrono::duration<double>(Clock::now() - start).count() /
              0.1));
      ++completed;
      ++report.traj_completed[bucket];
      if (r.status == core::ServeStatus::Shed) {
        ++report.traj_shed[bucket];
      } else {
        latencies_ms.push_back(r.latency_s * 1e3);
        if (r.deadline_met) {
          ++on_time;
          ++report.traj_on_time[bucket];
        }
      }
    }
  });

  std::mt19937_64 rng(cfg.seed ^ std::hash<std::string>{}(name));
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::exponential_distribution<double> exp_base(1.0);
  double next_arrival = 0.0;  // seconds from phase start
  std::int64_t submitted = 0;
  // Sample degraded answers inline (collector side would need the request
  // context); keep a bounded reservoir per phase.
  constexpr std::size_t kMaxDegradedSamples = 64;

  while (next_arrival < cfg.phase_s) {
    // Sleep until the next arrival is due, in sub-millisecond hops.
    for (;;) {
      const double elapsed =
          std::chrono::duration<double>(Clock::now() - start).count();
      if (elapsed >= next_arrival) break;
      std::this_thread::sleep_for(std::chrono::microseconds(
          std::min<std::int64_t>(
              500, static_cast<std::int64_t>((next_arrival - elapsed) * 1e6) +
                       1)));
    }
    // Submit everything due by now (open loop: the schedule never waits).
    double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    while (next_arrival <= elapsed && next_arrival < cfg.phase_s) {
      // Compose one request from the mix.
      const double zu = uni(rng);
      const int k = static_cast<int>(
          std::lower_bound(cdf.begin(), cdf.end(), zu) - cdf.begin());
      const Workload& w = workloads[static_cast<std::size_t>(
          std::min<int>(k, static_cast<int>(workloads.size()) - 1))];
      core::BatchRequest req;
      req.speeds = w.list;
      // 30% of requests ask one of 8 hot quantized sizes (result-cache
      // hits); the rest drift n across a wide range — near-miss traffic
      // that must solve, warm-started off the fingerprint hint. The solves
      // are what the overload phase actually runs out of.
      req.n = uni(rng) < 0.3
                  ? w.base_n + 1000 * static_cast<std::int64_t>(rng() % 8)
                  : w.base_n + static_cast<std::int64_t>(rng() % 250000);
      req.slo.deadline_s = cfg.deadline_ms * 1e-3;
      const double pu = uni(rng);
      req.slo.priority = pu < 0.2   ? core::Priority::Low
                         : pu < 0.8 ? core::Priority::Normal
                                    : core::Priority::High;
      req.slo.allow_degraded = uni(rng) >= 0.1;  // 10% refuse degradation
      const int wk = static_cast<int>(&w - workloads.data());
      const std::int64_t req_n = req.n;

      std::future<core::ServeResult> f = server.submit(std::move(req));
      ++submitted;
      // Peek degraded outcomes that are already resolved (admission-time
      // degradation resolves synchronously inside submit()).
      if (degraded_samples.size() < kMaxDegradedSamples &&
          f.wait_for(std::chrono::seconds(0)) ==
              std::future_status::ready) {
        core::ServeResult r = f.get();
        if (r.status == core::ServeStatus::Degraded) {
          degraded_samples.push_back({wk, req_n, r.result.distribution.counts,
                                      r.error_bound});
        }
        // Re-wrap the consumed result so the collector still sees it.
        std::promise<core::ServeResult> relay;
        f = relay.get_future();
        relay.set_value(std::move(r));
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        pending.push_back(std::move(f));
      }
      cv.notify_one();

      // Schedule the next arrival.
      double r = rate;
      if (bursty) {
        const double phase = std::fmod(next_arrival, 0.2);
        r = rate * (phase < 0.05 ? 3.0 : 1.0 / 3.0);
      }
      next_arrival += exp_base(rng) / std::max(r, 1.0);
      elapsed = std::chrono::duration<double>(Clock::now() - start).count();
    }
  }

  // Let queued work finish (or be shed by the server's own expiry logic),
  // then stop the collector.
  server.drain(std::chrono::seconds(30));
  {
    std::lock_guard<std::mutex> lock(mu);
    done_submitting = true;
  }
  cv.notify_all();
  collector.join();

  report.submitted = submitted;
  report.stats = delta(server.slo_stats(), before);
  report.on_time = on_time;
  report.goodput = static_cast<double>(on_time) / cfg.phase_s;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  report.p50_ms = percentile(latencies_ms, 0.50);
  report.p99_ms = percentile(latencies_ms, 0.99);
  (void)completed;
  return report;
}

void emit_phase_json(std::ofstream& json, const PhaseReport& r, bool last) {
  const core::SloStats& s = r.stats;
  json << "    {\"name\": \"" << r.name << "\", \"arrivals\": \""
       << r.arrivals << "\", \"offered_rate\": " << r.offered_rate
       << ", \"submitted\": " << r.submitted << ",\n"
       << "     \"offered\": " << s.offered << ", \"admitted\": " << s.admitted
       << ", \"degraded\": " << s.degraded << ", \"shed\": " << s.shed
       << ",\n"
       << "     \"shed_admission\": " << s.shed_admission
       << ", \"shed_queue_full\": " << s.shed_queue_full
       << ", \"shed_expired\": " << s.shed_expired
       << ", \"shed_shutdown\": " << s.shed_shutdown << ",\n"
       << "     \"deadline_misses\": " << s.deadline_misses
       << ", \"on_time\": " << r.on_time << ", \"goodput\": " << r.goodput
       << ", \"p50_ms\": " << r.p50_ms << ", \"p99_ms\": " << r.p99_ms
       << ",\n     \"trajectory_100ms\": {\"completed\": [";
  for (std::size_t i = 0; i < r.traj_completed.size(); ++i)
    json << (i ? ", " : "") << r.traj_completed[i];
  json << "], \"on_time\": [";
  for (std::size_t i = 0; i < r.traj_on_time.size(); ++i)
    json << (i ? ", " : "") << r.traj_on_time[i];
  json << "], \"shed\": [";
  for (std::size_t i = 0; i < r.traj_shed.size(); ++i)
    json << (i ? ", " : "") << r.traj_shed[i];
  json << "]}}" << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const auto has_value = [&](const char* flag) {
      return std::strcmp(argv[i], flag) == 0 && i + 1 < argc;
    };
    if (std::strcmp(argv[i], "--gate") == 0) cfg.gate = true;
    else if (has_value("--threads")) cfg.threads = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (has_value("--phase-s")) cfg.phase_s = std::atof(argv[++i]);
    else if (has_value("--deadline-ms")) cfg.deadline_ms = std::atof(argv[++i]);
    else if (has_value("--load1")) cfg.load1 = std::atof(argv[++i]);
    else if (has_value("--load2")) cfg.load2 = std::atof(argv[++i]);
    else if (has_value("--fingerprints")) cfg.fingerprints = std::atoi(argv[++i]);
    else if (has_value("--zipf")) cfg.zipf_s = std::atof(argv[++i]);
    else if (has_value("--max-rate")) cfg.max_rate = std::atof(argv[++i]);
    else if (has_value("--seed")) cfg.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    else if (has_value("--out")) cfg.out = argv[++i];
    else {
      std::cerr << "usage: loadgen [--gate] [--threads N] [--phase-s S]\n"
                << "  [--deadline-ms MS] [--load1 X] [--load2 X]\n"
                << "  [--fingerprints K] [--zipf S] [--max-rate R]\n"
                << "  [--seed N] [--out FILE]\n";
      return 2;
    }
  }
  if (cfg.threads == 0)
    cfg.threads = std::max(2u, std::thread::hardware_concurrency() / 2);

  const std::vector<Workload> workloads = make_workloads(cfg.fingerprints);
  const std::vector<double> cdf = zipf_cdf(cfg.fingerprints, cfg.zipf_s);

  core::ServerOptions opts;
  opts.threads = cfg.threads;
  opts.cache_capacity = 4096;
  opts.hint_capacity = 4096;
  opts.max_queue_depth = static_cast<std::size_t>(cfg.threads) * 64;
  core::PartitionServer server(opts);

  // Seed the hint store (and the result cache) with one exact solve per
  // fingerprint, so degradation has a previous solution to rescale from
  // the first overloaded second. serve() is not SLO-accounted.
  for (const Workload& w : workloads) (void)server.serve(w.list, w.base_n);

  // Closed-loop calibration: mean service time of a cache-missing solve.
  {
    std::mt19937_64 rng(cfg.seed);
    const Clock::time_point t0 = Clock::now();
    int calibration = 0;
    while (std::chrono::duration<double>(Clock::now() - t0).count() < 0.25) {
      const Workload& w = workloads[rng() % workloads.size()];
      (void)server.serve_slo(w.list,
                             w.base_n + 17 + static_cast<std::int64_t>(
                                                 rng() % 100000),
                             {}, {60.0});
      ++calibration;
    }
    if (calibration == 0) return 1;
  }
  const double service_s = [&] {
    // Recover the learned estimate through the public surface.
    const double d = server.predicted_delay(core::Priority::Normal);
    return d > 0.0 ? d : 1e-4;
  }();
  const double capacity =
      std::min(cfg.max_rate, static_cast<double>(cfg.threads) / service_s);

  std::vector<DegradedSample> degraded_samples;
  std::vector<PhaseReport> phases;
  phases.push_back(run_phase(server, workloads, cdf, cfg,
                             cfg.load1 * capacity, /*bursty=*/false,
                             "sustainable", degraded_samples));
  phases.push_back(run_phase(server, workloads, cdf, cfg,
                             cfg.load2 * capacity, /*bursty=*/true,
                             "overload", degraded_samples));

  // Post-run verification: every sampled degraded answer's bound must
  // dominate its true relative makespan error against a cold exact solve.
  int bound_violations = 0;
  for (const DegradedSample& s : degraded_samples) {
    const Workload& w = workloads[static_cast<std::size_t>(s.workload)];
    const core::PartitionResult exact = core::partition(w.list, s.n);
    const double exact_ms = core::makespan(w.list, exact.distribution);
    core::Distribution got;
    got.counts = s.counts;
    const double got_ms = core::makespan(w.list, got);
    const double true_error = got_ms / exact_ms - 1.0;
    if (s.bound < true_error - 1e-9) ++bound_violations;
  }

  std::vector<std::string> failures;
  for (const PhaseReport& r : phases) {
    const core::SloStats& s = r.stats;
    if (s.offered != r.submitted)
      failures.push_back(r.name + ": offered " + std::to_string(s.offered) +
                         " != submitted " + std::to_string(r.submitted));
    if (s.offered != s.admitted + s.degraded + s.shed)
      failures.push_back(r.name + ": offered " + std::to_string(s.offered) +
                         " != admitted+degraded+shed " +
                         std::to_string(s.admitted + s.degraded + s.shed));
  }
  const double goodput_ratio =
      phases[0].goodput > 0.0 ? phases[1].goodput / phases[0].goodput : 0.0;
  if (goodput_ratio < 0.8)
    failures.push_back("overload goodput " + std::to_string(phases[1].goodput) +
                       " < 80% of sustainable " +
                       std::to_string(phases[0].goodput));
  if (phases[0].p99_ms > cfg.deadline_ms)
    failures.push_back("sustainable p99 " + std::to_string(phases[0].p99_ms) +
                       " ms exceeds the " + std::to_string(cfg.deadline_ms) +
                       " ms deadline");
  if (bound_violations > 0)
    failures.push_back(std::to_string(bound_violations) +
                       " degraded answers broke their error bound");

  std::ofstream json(cfg.out);
  json << "{\n  \"bench\": \"loadgen\",\n"
       << "  \"threads\": " << cfg.threads << ",\n"
       << "  \"deadline_ms\": " << cfg.deadline_ms << ",\n"
       << "  \"service_estimate_s\": " << service_s << ",\n"
       << "  \"capacity_rps\": " << capacity << ",\n"
       << "  \"goodput_ratio\": " << goodput_ratio << ",\n"
       << "  \"degraded_samples\": " << degraded_samples.size() << ",\n"
       << "  \"degraded_bound_violations\": " << bound_violations << ",\n"
       << "  \"phases\": [\n";
  for (std::size_t i = 0; i < phases.size(); ++i)
    emit_phase_json(json, phases[i], i + 1 == phases.size());
  json << "  ],\n  \"metrics\": " << obs::metrics().to_json() << "}\n";
  json.close();

  for (const PhaseReport& r : phases) {
    const core::SloStats& s = r.stats;
    std::cout << r.name << " (" << r.arrivals << ", "
              << static_cast<std::int64_t>(r.offered_rate)
              << " rps offered): offered=" << s.offered
              << " admitted=" << s.admitted << " degraded=" << s.degraded
              << " shed=" << s.shed << " (adm " << s.shed_admission << "/qf "
              << s.shed_queue_full << "/exp " << s.shed_expired << "/shut "
              << s.shed_shutdown << ")"
              << " goodput=" << static_cast<std::int64_t>(r.goodput)
              << "/s p50=" << r.p50_ms << "ms p99=" << r.p99_ms << "ms\n";
  }
  std::cout << "goodput ratio (overload/sustainable) = " << goodput_ratio
            << ", degraded samples checked = " << degraded_samples.size()
            << ", bound violations = " << bound_violations << "\n"
            << "wrote " << cfg.out << "\n";

  if (!failures.empty()) {
    for (const std::string& f : failures) std::cerr << "GATE: " << f << "\n";
    if (cfg.gate) return 1;
  } else if (cfg.gate) {
    std::cout << "loadgen gate: all checks passed\n";
  }
  return 0;
}
