// Figure 2: workload-fluctuation performance bands of MatrixMultATLAS on
// Comp1, Comp2 and Comp4 of Table 1. The paper reports band widths of
// ~30-40% of the maximum speed at small problem sizes, declining close to
// linearly with execution time to ~5-8% at the largest solvable size.
#include <iostream>

#include "common.hpp"
#include "simcluster/presets.hpp"
#include "simcluster/workload.hpp"

int main() {
  using namespace fpm;
  const auto machines = sim::table1_machines();
  const char* app = sim::kMatMulAtlas;

  for (const std::size_t idx : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
    const auto& m = machines[idx];
    const auto& truth = *m.apps.at(app);
    util::Table t("Figure 2 - performance band of MatrixMultATLAS on " +
                      m.spec.name,
                  {"size_elements", "lower_MFlops", "upper_MFlops",
                   "width_pct_of_speed"});
    for (double x = truth.cache_capacity() * 0.5; x <= truth.max_size();
         x *= 1.8) {
      const sim::BandEdges e = sim::band_edges(m.fluctuation, truth, x);
      const double width = sim::band_width(m.fluctuation, truth, x);
      t.add_row({util::fmt(x, 0), util::fmt(e.lower, 1), util::fmt(e.upper, 1),
                 util::fmt(width * 100.0, 1)});
    }
    bench::emit(t);

    const double w_small =
        sim::band_width(m.fluctuation, truth, truth.cache_capacity());
    const double w_large =
        sim::band_width(m.fluctuation, truth, truth.max_size() * 0.8);
    std::cout << m.spec.name << ": width shrinks from "
              << util::fmt(w_small * 100.0, 1) << "% at small sizes to "
              << util::fmt(w_large * 100.0, 1)
              << "% at the maximum solvable size (paper: ~30-40% -> ~5-8%).\n\n";
  }
  return 0;
}
