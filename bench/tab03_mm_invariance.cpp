// Table 3: serial matrix-matrix multiplication speed is (nearly) invariant
// to the matrix shape when the element count is fixed — the property that
// lets the paper build speed functions from square-matrix runs and apply
// them to the non-square slices of the striped algorithm.
//
// Two reproductions:
//   (a) real host runs of the naive kernel at Table-3-style shape ladders
//       (scaled down so the bench completes in seconds);
//   (b) the simulated X8 machine via the shape-invariant surface at the
//       paper's exact sizes.
#include <cmath>
#include <iostream>
#include <memory>

#include "common.hpp"
#include "core/surface.hpp"
#include "linalg/real_source.hpp"
#include "simcluster/presets.hpp"

int main() {
  using namespace fpm;

  // (a) Real host: for each base n the ladder (n, n), (n/2, 2n), (n/4, 4n),
  // (n/8, 8n) keeps n1*n2 constant while the shape varies 64-fold.
  util::Table real_t(
      "Table 3 (real host) - naive MM speed across equal-element shapes",
      {"shape_n1xn2", "elements", "MFlops"});
  for (const std::size_t base : {96u, 160u, 256u}) {
    for (int k = 0; k < 4; ++k) {
      const std::size_t n1 = base >> k;
      const std::size_t n2 = base << k;
      const double mflops = linalg::measure_mm_mflops(n1, n2, false);
      real_t.add_row({util::fmt(n1) + "x" + util::fmt(n2),
                      util::fmt(n1 * n2), util::fmt(mflops, 1)});
    }
  }
  bench::emit(real_t);

  // (b) Simulated X8 at the paper's exact Table-3 sizes.
  auto cluster = sim::make_table2_cluster();
  const std::size_t x8 = 7;
  // Share the X8 ground-truth curve through the shape-invariant surface.
  struct Shared final : core::SpeedFunction {
    const core::SpeedFunction* f;
    double speed(double x) const override { return f->speed(x); }
    double max_size() const override { return f->max_size(); }
  };
  auto shared = std::make_shared<Shared>();
  shared->f = &cluster.ground_truth(x8, sim::kMatMul);
  const core::ShapeInvariantSurface surface(shared, 0.01);

  util::Table sim_t(
      "Table 3 (simulated X8) - MM speed across equal-element shapes",
      {"shape_n1xn2", "elements", "MFlops"});
  for (const long base : {256L, 1024L, 2304L, 4096L}) {
    for (int k = 0; k < 4; ++k) {
      const long n1 = base >> k;
      const long n2 = base << k;
      // Total stored elements of the multiplication: ~3 * n1 * n2.
      const double speed =
          surface.speed(static_cast<double>(n1) * 1.732,
                        static_cast<double>(n2) * 1.732);
      sim_t.add_row({util::fmt(n1) + "x" + util::fmt(n2),
                     util::fmt(n1 * n2), util::fmt(speed, 1)});
    }
  }
  bench::emit(sim_t);

  std::cout << "Expected shape (paper Table 3): within each equal-element "
               "group the speeds agree to a few percent.\n";
  return 0;
}
