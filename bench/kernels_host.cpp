// Host-kernel microbenchmark: the efficient/inefficient memory-pattern
// dichotomy of Figure 1, measured for real on THIS machine — naive vs
// blocked matrix multiplication and LU across sizes. Not a paper figure
// per se, but the ground truth behind the application profiles the
// simulator uses.
#include <benchmark/benchmark.h>

#include "linalg/block_lu.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/kernels.hpp"

namespace {

using namespace fpm;

void BM_MatmulNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const util::MatrixD a = linalg::random_matrix(n, n, 1);
  const util::MatrixD b = linalg::random_matrix(n, n, 2);
  for (auto _ : state) {
    const util::MatrixD c = linalg::matmul_naive(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["MFlops"] = benchmark::Counter(
      linalg::mm_flops(n, n, n) * 1e-6, benchmark::Counter::kIsRate);
}

void BM_MatmulBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const util::MatrixD a = linalg::random_matrix(n, n, 1);
  const util::MatrixD b = linalg::random_matrix(n, n, 2);
  for (auto _ : state) {
    const util::MatrixD c = linalg::matmul_blocked(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["MFlops"] = benchmark::Counter(
      linalg::mm_flops(n, n, n) * 1e-6, benchmark::Counter::kIsRate);
}

void BM_LuUnblocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const util::MatrixD original = linalg::random_matrix(n, n, 3);
  std::vector<std::size_t> pivots;
  for (auto _ : state) {
    util::MatrixD a = original;
    benchmark::DoNotOptimize(linalg::lu_factor(a, pivots));
  }
  state.counters["MFlops"] = benchmark::Counter(
      linalg::lu_flops(n, n) * 1e-6, benchmark::Counter::kIsRate);
}

void BM_LuBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const util::MatrixD original = linalg::random_matrix(n, n, 3);
  std::vector<std::size_t> pivots;
  for (auto _ : state) {
    util::MatrixD a = original;
    benchmark::DoNotOptimize(linalg::block_lu_factor(a, 48, pivots));
  }
  state.counters["MFlops"] = benchmark::Counter(
      linalg::lu_flops(n, n) * 1e-6, benchmark::Counter::kIsRate);
}

void BM_Cholesky(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const util::MatrixD original = linalg::spd_matrix(n, 5);
  for (auto _ : state) {
    util::MatrixD a = original;
    benchmark::DoNotOptimize(linalg::cholesky_factor(a));
  }
  state.counters["MFlops"] = benchmark::Counter(
      linalg::cholesky_flops(n) * 1e-6, benchmark::Counter::kIsRate);
}

void BM_ArrayOps(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> data(n, 1.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(linalg::array_ops(data, 4));
  state.counters["MFlops"] = benchmark::Counter(
      linalg::array_ops_flops(static_cast<std::int64_t>(n), 4) * 1e-6,
      benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(BM_MatmulNaive)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MatmulBlocked)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LuUnblocked)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LuBlocked)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Cholesky)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ArrayOps)->Arg(1 << 12)->Arg(1 << 18)->Arg(1 << 22)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
