// Figure 21: the cost in seconds of finding the optimal distribution with
// the partitioning algorithm, for p = 270, 540, 810, 1080 processors and
// problem sizes up to 2·10⁹ elements. The paper reports costs below ~0.12 s
// — negligible against application run times of minutes to hours.
//
// The processor set replicates the twelve Table-2 functional models (built
// with the §3.1 procedure, 5-point piece-wise linear curves as in the
// paper) with small deterministic speed perturbations so every processor is
// distinct. Timing uses google-benchmark; a summary table in the paper's
// format is printed afterwards.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common.hpp"
#include "core/fpm.hpp"
#include "util/timer.hpp"

namespace {

using namespace fpm;

/// Builds the replicated processor set once per process.
const std::vector<std::shared_ptr<const core::SpeedFunction>>& curve_pool() {
  static const auto pool = [] {
    auto cluster = sim::make_table2_cluster();
    const bench::BuiltModels built = bench::build_models(cluster, sim::kMatMul);
    std::vector<std::shared_ptr<const core::SpeedFunction>> owned;
    const std::size_t base = built.models.curves.size();
    owned.reserve(1080);
    for (std::size_t i = 0; i < 1080; ++i) {
      auto curve = std::make_shared<core::PiecewiseLinearSpeed>(
          built.models.curves[i % base]);
      // Deterministic +/-10% spread so replicas differ.
      const double factor = 0.9 + 0.2 * static_cast<double>(i % 7) / 6.0;
      owned.push_back(std::make_shared<core::ScaledSpeed>(curve, factor));
    }
    return owned;
  }();
  return pool;
}

core::SpeedList take(std::size_t p) {
  core::SpeedList list;
  list.reserve(p);
  for (std::size_t i = 0; i < p; ++i) list.push_back(curve_pool()[i].get());
  return list;
}

void BM_PartitionCost(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const std::int64_t n = state.range(1);
  const core::SpeedList speeds = take(p);
  for (auto _ : state) {
    const core::PartitionResult r = core::partition_combined(speeds, n);
    benchmark::DoNotOptimize(r.distribution.counts.data());
  }
}

}  // namespace

BENCHMARK(BM_PartitionCost)
    ->ArgNames({"p", "n"})
    ->Args({270, 500000000})
    ->Args({270, 2000000000})
    ->Args({540, 500000000})
    ->Args({540, 2000000000})
    ->Args({810, 500000000})
    ->Args({810, 2000000000})
    ->Args({1080, 500000000})
    ->Args({1080, 2000000000})
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Figure-21 summary table: cost (s) against problem size per p.
  util::Table t("Figure 21 - cost of the partitioning algorithm (seconds)",
                {"problem_size", "p=270", "p=540", "p=810", "p=1080"});
  for (const std::int64_t n :
       {250000000LL, 500000000LL, 1000000000LL, 2000000000LL}) {
    std::vector<std::string> row{util::fmt(static_cast<long long>(n))};
    for (const std::size_t p : {270u, 540u, 810u, 1080u}) {
      const core::SpeedList speeds = take(p);
      util::Timer timer;
      const auto r = core::partition_combined(speeds, n);
      const double secs = timer.seconds();
      benchmark::DoNotOptimize(r.distribution.counts.data());
      row.push_back(util::fmt(secs, 4));
    }
    t.add_row(row);
  }
  bench::emit(t);
  std::cout << "Expected shape (paper Figure 21): costs of a fraction of a "
               "second, growing with p and roughly log-like in n.\n";
  return 0;
}
