// Throughput benchmark for the compiled speed-model layer (core/compiled.*)
// and the concurrent batch-partitioning engine (core/server.hpp).
//
// Three measurements, written to BENCH_partition_throughput.json:
//   1. kernel   — closed-form intersections (compiled layer) against the
//                 generic bisection of SpeedFunction::intersect on the same
//                 slope workload; expected well above 2x.
//   2. partition — full partition() runs with the compiled path toggled on
//                 vs. off (set_compiled_partitioning); the virtual path
//                 already uses the closed-form kernels, so this isolates the
//                 devirtualization + SoA win and must never regress.
//   3. server   — PartitionServer::run_batch on an all-distinct (cache-miss)
//                 request batch at increasing thread counts.
//   4. serve_hit — the cache-hit path: keying via the allocation-free
//                 CompiledSpeedList::fingerprint_of against the old
//                 compile-to-fingerprint approach, plus the end-to-end
//                 serve() latency on a warm cache.
//
// The process metrics registry (obs::metrics) is embedded in the JSON dump
// under "metrics", so one artifact carries both the timings and the
// engine's own accounting of the run.
//
// `--gate` turns measurements 1, 2, and 4 into pass/fail checks for CI:
// exit 1 when the kernel speedup drops below 2x, compiled partitioning is
// slower than the virtual baseline, or fingerprint keying is not faster
// than compile keying (each with a small tolerance for timer noise).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/fpm.hpp"
#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace {

using namespace fpm;

/// The intersection workload: a heterogeneous ensemble plus, per function,
/// slopes chosen so the crossings sweep the whole modelled range (slope =
/// speed(x)/x puts the crossing exactly at x).
struct KernelWorkload {
  bench::OwnedEnsemble ensemble;
  std::vector<std::vector<double>> slopes;  // [function][slope]
};

KernelWorkload make_kernel_workload() {
  KernelWorkload w;
  for (auto fam : {bench::power_family(40), bench::exp_family(40)})
    for (auto& f : fam.owned) w.ensemble.owned.push_back(std::move(f));
  w.slopes.resize(w.ensemble.owned.size());
  for (std::size_t i = 0; i < w.ensemble.owned.size(); ++i) {
    const auto& f = *w.ensemble.owned[i];
    for (double x = 1e2; x <= 1e8; x *= 10.0)
      w.slopes[i].push_back(f.speed(x) / x);
  }
  return w;
}

/// One pass of the workload through the generic bisection (the
/// SpeedFunction base-class intersect, qualified to bypass the overrides).
double run_kernel_generic(const KernelWorkload& w) {
  double acc = 0.0;
  for (std::size_t i = 0; i < w.ensemble.owned.size(); ++i)
    for (const double s : w.slopes[i])
      acc += w.ensemble.owned[i]->SpeedFunction::intersect(s);
  return acc;
}

/// One pass through the compiled closed forms.
double run_kernel_compiled(const core::CompiledSpeedList& compiled,
                           const KernelWorkload& w) {
  double acc = 0.0;
  for (std::size_t i = 0; i < w.ensemble.owned.size(); ++i)
    for (const double s : w.slopes[i]) acc += compiled.intersect(i, s);
  return acc;
}

/// Best-of-`reps` wall time of `fn` (seconds), `inner` calls per rep.
template <typename Fn>
double best_of(int reps, int inner, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    util::Timer timer;
    for (int i = 0; i < inner; ++i) benchmark::DoNotOptimize(fn());
    best = std::min(best, timer.seconds() / inner);
  }
  return best;
}

/// The partition workload: every registry algorithm that needs no bounds,
/// over a mixed analytic ensemble, at two problem sizes.
double run_partitions(const core::SpeedList& list) {
  double acc = 0.0;
  for (const char* alg : {core::kAlgorithmBasic, core::kAlgorithmModified,
                          core::kAlgorithmCombined,
                          core::kAlgorithmInterpolation}) {
    core::PartitionPolicy policy;
    policy.algorithm = alg;
    for (const std::int64_t n : {1000000LL, 100000000LL}) {
      const core::PartitionResult r = core::partition(list, n, policy);
      acc += static_cast<double>(r.distribution.counts[0]);
    }
  }
  return acc;
}

// ---------------------------------------------------------------------
// google-benchmark registrations (standard reporting; the gate below does
// its own best-of timing so CI failures do not depend on benchmark flags).
// ---------------------------------------------------------------------

void BM_KernelGeneric(benchmark::State& state) {
  const KernelWorkload w = make_kernel_workload();
  for (auto _ : state) benchmark::DoNotOptimize(run_kernel_generic(w));
}
BENCHMARK(BM_KernelGeneric)->Unit(benchmark::kMillisecond);

void BM_KernelCompiled(benchmark::State& state) {
  const KernelWorkload w = make_kernel_workload();
  const auto compiled = core::CompiledSpeedList::compile(w.ensemble.list());
  for (auto _ : state)
    benchmark::DoNotOptimize(run_kernel_compiled(compiled, w));
}
BENCHMARK(BM_KernelCompiled)->Unit(benchmark::kMillisecond);

void BM_PartitionVirtual(benchmark::State& state) {
  const bench::OwnedEnsemble e = bench::exp_family(64);
  const core::SpeedList list = e.list();
  core::set_compiled_partitioning(false);
  for (auto _ : state) benchmark::DoNotOptimize(run_partitions(list));
  core::set_compiled_partitioning(true);
}
BENCHMARK(BM_PartitionVirtual)->Unit(benchmark::kMillisecond);

void BM_PartitionCompiled(benchmark::State& state) {
  const bench::OwnedEnsemble e = bench::exp_family(64);
  const core::SpeedList list = e.list();
  for (auto _ : state) benchmark::DoNotOptimize(run_partitions(list));
}
BENCHMARK(BM_PartitionCompiled)->Unit(benchmark::kMillisecond);

/// Serves `requests` all-distinct partition requests on `threads` threads;
/// returns requests per second.
double server_miss_rate(unsigned threads, int requests,
                        const bench::OwnedEnsemble& e) {
  core::ServerOptions opts;
  opts.threads = threads;
  opts.cache_capacity = 0;  // every request recomputes: pure miss load
  core::PartitionServer server(opts);
  std::vector<core::BatchRequest> batch;
  batch.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i)
    batch.push_back({e.list(), 1000000 + 7919LL * i, {}});
  util::Timer timer;
  const auto results = server.run_batch(std::move(batch));
  const double secs = timer.seconds();
  benchmark::DoNotOptimize(results.front().distribution.counts.data());
  return static_cast<double>(requests) / std::max(secs, 1e-12);
}

}  // namespace

int main(int argc, char** argv) {
  bool gate = false;
  std::string out = "BENCH_partition_throughput.json";
  // Strip our own flags before google-benchmark sees (and rejects) them.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gate") == 0)
      gate = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out = argv[++i];
    else
      argv[kept++] = argv[i];
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // --- 1. kernel: closed-form vs generic bisection ----------------------
  const KernelWorkload w = make_kernel_workload();
  const auto compiled = core::CompiledSpeedList::compile(w.ensemble.list());
  const double t_generic = best_of(5, 3, [&] { return run_kernel_generic(w); });
  const double t_closed =
      best_of(5, 3, [&] { return run_kernel_compiled(compiled, w); });
  const double kernel_speedup = t_generic / t_closed;

  // --- 2. partition: compiled path vs virtual path ----------------------
  const bench::OwnedEnsemble e = bench::exp_family(64);
  const core::SpeedList list = e.list();
  core::set_compiled_partitioning(false);
  const double t_virtual = best_of(5, 1, [&] { return run_partitions(list); });
  core::set_compiled_partitioning(true);
  const double t_compiled = best_of(5, 1, [&] { return run_partitions(list); });
  const double partition_speedup = t_virtual / t_compiled;

  // --- 3. server: cache-miss batch scaling over threads -----------------
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> thread_counts{1};
  if (hw >= 2) thread_counts.push_back(2);
  if (hw >= 4) thread_counts.push_back(4);
  if (hw > 4) thread_counts.push_back(hw);
  const bench::OwnedEnsemble se = bench::power_family(16);
  const int requests = 256;
  std::vector<double> rates;
  for (const unsigned t : thread_counts)
    rates.push_back(server_miss_rate(t, requests, se));

  // --- 4. serve_hit: warm-cache latency and cache keying ----------------
  // A hit needs only the key, so serving from a warm cache must not pay
  // for a full model compilation; compare the allocation-free fingerprint
  // against compiling just to read the fingerprint (the old keying).
  const core::SpeedList hit_list = se.list();
  const double t_key_compile = best_of(5, 200, [&] {
    return core::CompiledSpeedList::compile(hit_list).fingerprint();
  });
  const double t_key_fp = best_of(5, 200, [&] {
    return core::CompiledSpeedList::fingerprint_of(hit_list);
  });
  const double keying_speedup = t_key_compile / t_key_fp;
  core::PartitionServer hit_server({.threads = 1});
  const std::int64_t hit_n = 1000000;
  hit_server.serve(hit_list, hit_n);  // warm the cache: one miss
  const double t_hit = best_of(5, 200, [&] {
    return hit_server.serve(hit_list, hit_n).distribution.counts[0];
  });

  util::Table t("partition throughput",
                {"metric", "baseline", "optimized", "speedup"});
  t.add_row({"intersect kernel (ms/pass)", util::fmt(t_generic * 1e3, 3),
             util::fmt(t_closed * 1e3, 3), util::fmt(kernel_speedup, 2)});
  t.add_row({"partition sweep (ms)", util::fmt(t_virtual * 1e3, 3),
             util::fmt(t_compiled * 1e3, 3), util::fmt(partition_speedup, 2)});
  for (std::size_t i = 0; i < thread_counts.size(); ++i)
    t.add_row({"server miss batch, " + util::fmt(thread_counts[i]) +
                   " thread(s) (req/s)",
               util::fmt(rates[0], 0), util::fmt(rates[i], 0),
               util::fmt(rates[i] / rates[0], 2)});
  t.add_row({"cache keying (us)", util::fmt(t_key_compile * 1e6, 3),
             util::fmt(t_key_fp * 1e6, 3), util::fmt(keying_speedup, 2)});
  t.add_row({"serve cache hit (us)", "-", util::fmt(t_hit * 1e6, 3), "-"});
  bench::emit(t);

  std::ofstream json(out);
  json << "{\n"
       << "  \"kernel\": {\"generic_s\": " << t_generic
       << ", \"closed_form_s\": " << t_closed
       << ", \"speedup\": " << kernel_speedup << "},\n"
       << "  \"partition\": {\"virtual_s\": " << t_virtual
       << ", \"compiled_s\": " << t_compiled
       << ", \"speedup\": " << partition_speedup << "},\n"
       << "  \"server\": [";
  for (std::size_t i = 0; i < thread_counts.size(); ++i)
    json << (i ? ", " : "") << "{\"threads\": " << thread_counts[i]
         << ", \"requests\": " << requests
         << ", \"requests_per_s\": " << rates[i]
         << ", \"scaling\": " << rates[i] / rates[0] << "}";
  json << "],\n"
       << "  \"serve_hit\": {\"key_compile_s\": " << t_key_compile
       << ", \"key_fingerprint_s\": " << t_key_fp
       << ", \"keying_speedup\": " << keying_speedup
       << ", \"hit_s\": " << t_hit << "},\n"
       << "  \"metrics\": " << obs::metrics().to_json() << "}\n";
  std::cout << "wrote " << out << "\n";

  if (gate) {
    bool ok = true;
    if (kernel_speedup < 2.0) {
      std::cerr << "GATE FAIL: closed-form kernel speedup "
                << util::fmt(kernel_speedup, 2) << "x < 2x\n";
      ok = false;
    }
    // 15% tolerance absorbs timer noise; a real regression (losing the
    // devirtualized path) shows up far above it.
    if (t_compiled > t_virtual * 1.15) {
      std::cerr << "GATE FAIL: compiled partitioning "
                << util::fmt(t_compiled * 1e3, 3)
                << " ms slower than virtual baseline "
                << util::fmt(t_virtual * 1e3, 3) << " ms\n";
      ok = false;
    }
    // The fingerprint key skips entry/pool materialization entirely, so it
    // must beat compile-to-fingerprint comfortably; 1.2x leaves room for
    // timer noise on tiny ensembles.
    if (t_key_fp > t_key_compile / 1.2) {
      std::cerr << "GATE FAIL: fingerprint keying "
                << util::fmt(t_key_fp * 1e6, 3)
                << " us not faster than compile keying "
                << util::fmt(t_key_compile * 1e6, 3) << " us\n";
      ok = false;
    }
    if (!ok) return 1;
    std::cout << "gate passed: kernel " << util::fmt(kernel_speedup, 2)
              << "x, partition " << util::fmt(partition_speedup, 2)
              << "x, keying " << util::fmt(keying_speedup, 2) << "x\n";
  }
  return 0;
}
