// Throughput benchmark for the compiled speed-model layer (core/compiled.*)
// and the concurrent batch-partitioning engine (core/server.hpp).
//
// Three measurements, written to BENCH_partition_throughput.json:
//   1. kernel   — closed-form intersections (compiled layer) against the
//                 generic bisection of SpeedFunction::intersect on the same
//                 slope workload; expected well above 2x.
//   2. partition — full partition() runs with the compiled path toggled on
//                 vs. off (set_compiled_partitioning); the virtual path
//                 already uses the closed-form kernels, so this isolates the
//                 devirtualization + SoA win and must never regress.
//   3. server   — PartitionServer::run_batch on an all-distinct (cache-miss)
//                 request batch at increasing thread counts.
//   4. serve_hit — the cache-hit path: keying via the allocation-free
//                 CompiledSpeedList::fingerprint_of against the old
//                 compile-to-fingerprint approach, plus the end-to-end
//                 serve() latency on a warm cache.
//   5. near_miss — serve() under near-miss traffic (same models, drifting
//                 n: every request a cache miss) with the server's
//                 per-fingerprint warm-start on vs. off. The slope hint
//                 narrows each search without changing the distribution,
//                 so both the deterministic search_speed_evals counters and
//                 the end-to-end wall clock must improve.
//
// The process metrics registry (obs::metrics) is embedded in the JSON dump
// under "metrics", so one artifact carries both the timings and the
// engine's own accounting of the run.
//
// `--gate` turns measurements 1, 2, 4, and 5 into pass/fail checks for CI:
// exit 1 when the kernel speedup drops below 2x, compiled partitioning is
// slower than the virtual baseline, fingerprint keying is not faster than
// compile keying (each with a small tolerance for timer noise), the
// near-miss warm-start saves fewer than 3x the search-phase speed
// evaluations, or hinted serve() is slower than cold serve().
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/fpm.hpp"
#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace {

using namespace fpm;

/// The intersection workload: a heterogeneous ensemble plus, per function,
/// slopes chosen so the crossings sweep the whole modelled range (slope =
/// speed(x)/x puts the crossing exactly at x).
struct KernelWorkload {
  bench::OwnedEnsemble ensemble;
  std::vector<std::vector<double>> slopes;  // [function][slope]
};

KernelWorkload make_kernel_workload() {
  KernelWorkload w;
  for (auto fam : {bench::power_family(40), bench::exp_family(40)})
    for (auto& f : fam.owned) w.ensemble.owned.push_back(std::move(f));
  w.slopes.resize(w.ensemble.owned.size());
  for (std::size_t i = 0; i < w.ensemble.owned.size(); ++i) {
    const auto& f = *w.ensemble.owned[i];
    for (double x = 1e2; x <= 1e8; x *= 10.0)
      w.slopes[i].push_back(f.speed(x) / x);
  }
  return w;
}

/// One pass of the workload through the generic bisection (the
/// SpeedFunction base-class intersect, qualified to bypass the overrides).
double run_kernel_generic(const KernelWorkload& w) {
  double acc = 0.0;
  for (std::size_t i = 0; i < w.ensemble.owned.size(); ++i)
    for (const double s : w.slopes[i])
      acc += w.ensemble.owned[i]->SpeedFunction::intersect(s);
  return acc;
}

/// One pass through the compiled closed forms.
double run_kernel_compiled(const core::CompiledSpeedList& compiled,
                           const KernelWorkload& w) {
  double acc = 0.0;
  for (std::size_t i = 0; i < w.ensemble.owned.size(); ++i)
    for (const double s : w.slopes[i]) acc += compiled.intersect(i, s);
  return acc;
}

/// Best-of-`reps` wall time of `fn` (seconds), `inner` calls per rep.
template <typename Fn>
double best_of(int reps, int inner, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    util::Timer timer;
    for (int i = 0; i < inner; ++i) benchmark::DoNotOptimize(fn());
    best = std::min(best, timer.seconds() / inner);
  }
  return best;
}

/// The partition workload: every registry algorithm that needs no bounds,
/// over a mixed analytic ensemble, at two problem sizes.
double run_partitions(const core::SpeedList& list) {
  double acc = 0.0;
  for (const char* alg : {core::kAlgorithmBasic, core::kAlgorithmModified,
                          core::kAlgorithmCombined,
                          core::kAlgorithmInterpolation}) {
    core::PartitionPolicy policy;
    policy.algorithm = alg;
    for (const std::int64_t n : {1000000LL, 100000000LL}) {
      const core::PartitionResult r = core::partition(list, n, policy);
      acc += static_cast<double>(r.distribution.counts[0]);
    }
  }
  return acc;
}

// ---------------------------------------------------------------------
// google-benchmark registrations (standard reporting; the gate below does
// its own best-of timing so CI failures do not depend on benchmark flags).
// ---------------------------------------------------------------------

void BM_KernelGeneric(benchmark::State& state) {
  const KernelWorkload w = make_kernel_workload();
  for (auto _ : state) benchmark::DoNotOptimize(run_kernel_generic(w));
}
BENCHMARK(BM_KernelGeneric)->Unit(benchmark::kMillisecond);

void BM_KernelCompiled(benchmark::State& state) {
  const KernelWorkload w = make_kernel_workload();
  const auto compiled = core::CompiledSpeedList::compile(w.ensemble.list());
  for (auto _ : state)
    benchmark::DoNotOptimize(run_kernel_compiled(compiled, w));
}
BENCHMARK(BM_KernelCompiled)->Unit(benchmark::kMillisecond);

void BM_PartitionVirtual(benchmark::State& state) {
  const bench::OwnedEnsemble e = bench::exp_family(64);
  const core::SpeedList list = e.list();
  core::set_compiled_partitioning(false);
  for (auto _ : state) benchmark::DoNotOptimize(run_partitions(list));
  core::set_compiled_partitioning(true);
}
BENCHMARK(BM_PartitionVirtual)->Unit(benchmark::kMillisecond);

void BM_PartitionCompiled(benchmark::State& state) {
  const bench::OwnedEnsemble e = bench::exp_family(64);
  const core::SpeedList list = e.list();
  for (auto _ : state) benchmark::DoNotOptimize(run_partitions(list));
}
BENCHMARK(BM_PartitionCompiled)->Unit(benchmark::kMillisecond);

/// Serves `requests` all-distinct partition requests on `threads` threads;
/// returns requests per second.
double server_miss_rate(unsigned threads, int requests,
                        const bench::OwnedEnsemble& e) {
  core::ServerOptions opts;
  opts.threads = threads;
  opts.cache_capacity = 0;  // every request recomputes: pure miss load
  core::PartitionServer server(opts);
  std::vector<core::BatchRequest> batch;
  batch.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i)
    batch.push_back({e.list(), 1000000 + 7919LL * i, {}});
  util::Timer timer;
  const auto results = server.run_batch(std::move(batch));
  const double secs = timer.seconds();
  benchmark::DoNotOptimize(results.front().result.distribution.counts.data());
  return static_cast<double>(requests) / std::max(secs, 1e-12);
}

/// Near-miss traffic: one model list, a different n per request, so every
/// request misses the result cache but (with warm-starting on) reuses the
/// fingerprint's remembered slope.
constexpr int kNearMissRequests = 200;

std::int64_t near_miss_n(int i) { return 1000000 + 37LL * i; }

struct NearMissOutcome {
  std::int64_t search_evals = 0;
  std::int64_t speed_evals = 0;
  int warm_hits = 0;
  int warm_stale = 0;
};

NearMissOutcome serve_near_miss(core::PartitionServer& server,
                                const core::SpeedList& list) {
  NearMissOutcome o;
  for (int i = 0; i < kNearMissRequests; ++i) {
    const core::PartitionResult r = server.serve(list, near_miss_n(i));
    o.search_evals += r.stats.search_speed_evals;
    o.speed_evals += r.stats.speed_evals;
    if (r.stats.warmstart == core::WarmStart::Hit) ++o.warm_hits;
    if (r.stats.warmstart == core::WarmStart::Stale) ++o.warm_stale;
  }
  return o;
}

/// Seconds per request for one pass of the near-miss sequence. The result
/// cache is cleared before each pass (the point is the miss path); the
/// server's slope hints persist, which is the steady state being measured.
double near_miss_pass(core::PartitionServer& server,
                      const core::SpeedList& list) {
  server.clear_cache();
  util::Timer timer;
  double acc = 0.0;
  for (int i = 0; i < kNearMissRequests; ++i)
    acc += static_cast<double>(
        server.serve(list, near_miss_n(i)).distribution.counts[0]);
  benchmark::DoNotOptimize(acc);
  return timer.seconds() / kNearMissRequests;
}

}  // namespace

int main(int argc, char** argv) {
  bool gate = false;
  std::string out = "BENCH_partition_throughput.json";
  // Strip our own flags before google-benchmark sees (and rejects) them.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gate") == 0)
      gate = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out = argv[++i];
    else
      argv[kept++] = argv[i];
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // --- 1. kernel: closed-form vs generic bisection ----------------------
  const KernelWorkload w = make_kernel_workload();
  const auto compiled = core::CompiledSpeedList::compile(w.ensemble.list());
  const double t_generic = best_of(5, 3, [&] { return run_kernel_generic(w); });
  const double t_closed =
      best_of(5, 3, [&] { return run_kernel_compiled(compiled, w); });
  const double kernel_speedup = t_generic / t_closed;

  // --- 2. partition: compiled path vs virtual path ----------------------
  const bench::OwnedEnsemble e = bench::exp_family(64);
  const core::SpeedList list = e.list();
  core::set_compiled_partitioning(false);
  const double t_virtual = best_of(5, 1, [&] { return run_partitions(list); });
  core::set_compiled_partitioning(true);
  const double t_compiled = best_of(5, 1, [&] { return run_partitions(list); });
  const double partition_speedup = t_virtual / t_compiled;

  // --- 3. server: cache-miss batch scaling over threads -----------------
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> thread_counts{1};
  if (hw >= 2) thread_counts.push_back(2);
  if (hw >= 4) thread_counts.push_back(4);
  if (hw > 4) thread_counts.push_back(hw);
  const bench::OwnedEnsemble se = bench::power_family(16);
  const int requests = 256;
  std::vector<double> rates;
  for (const unsigned t : thread_counts)
    rates.push_back(server_miss_rate(t, requests, se));

  // --- 4. serve_hit: warm-cache latency and cache keying ----------------
  // A hit needs only the key, so serving from a warm cache must not pay
  // for a full model compilation; compare the allocation-free fingerprint
  // against compiling just to read the fingerprint (the old keying).
  const core::SpeedList hit_list = se.list();
  const double t_key_compile = best_of(5, 200, [&] {
    return core::CompiledSpeedList::compile(hit_list).fingerprint();
  });
  const double t_key_fp = best_of(5, 200, [&] {
    return core::CompiledSpeedList::fingerprint_of(hit_list);
  });
  const double keying_speedup = t_key_compile / t_key_fp;
  core::PartitionServer hit_server({.threads = 1});
  const std::int64_t hit_n = 1000000;
  hit_server.serve(hit_list, hit_n);  // warm the cache: one miss
  const double t_hit = best_of(5, 200, [&] {
    return hit_server.serve(hit_list, hit_n).distribution.counts[0];
  });

  // --- 5. near_miss: drifting-n serve() with warm-start on vs off -------
  // Fresh single-thread servers so the returned stats are the engine's own
  // (every request is a miss). The counter comparison is deterministic;
  // the wall clock backs it with an end-to-end speedup.
  core::PartitionServer nm_cold({.threads = 1, .warm_start = false});
  core::PartitionServer nm_warm({.threads = 1});
  const NearMissOutcome nm_cold_out = serve_near_miss(nm_cold, hit_list);
  const NearMissOutcome nm_warm_out = serve_near_miss(nm_warm, hit_list);
  const double nm_eval_ratio =
      nm_warm_out.search_evals > 0
          ? static_cast<double>(nm_cold_out.search_evals) /
                static_cast<double>(nm_warm_out.search_evals)
          : std::numeric_limits<double>::infinity();
  double t_nm_cold = std::numeric_limits<double>::infinity();
  double t_nm_warm = std::numeric_limits<double>::infinity();
  for (int r = 0; r < 5; ++r) {
    t_nm_cold = std::min(t_nm_cold, near_miss_pass(nm_cold, hit_list));
    t_nm_warm = std::min(t_nm_warm, near_miss_pass(nm_warm, hit_list));
  }
  const double nm_speedup = t_nm_cold / t_nm_warm;

  util::Table t("partition throughput",
                {"metric", "baseline", "optimized", "speedup"});
  t.add_row({"intersect kernel (ms/pass)", util::fmt(t_generic * 1e3, 3),
             util::fmt(t_closed * 1e3, 3), util::fmt(kernel_speedup, 2)});
  t.add_row({"partition sweep (ms)", util::fmt(t_virtual * 1e3, 3),
             util::fmt(t_compiled * 1e3, 3), util::fmt(partition_speedup, 2)});
  for (std::size_t i = 0; i < thread_counts.size(); ++i)
    t.add_row({"server miss batch, " + util::fmt(thread_counts[i]) +
                   " thread(s) (req/s)",
               util::fmt(rates[0], 0), util::fmt(rates[i], 0),
               util::fmt(rates[i] / rates[0], 2)});
  t.add_row({"cache keying (us)", util::fmt(t_key_compile * 1e6, 3),
             util::fmt(t_key_fp * 1e6, 3), util::fmt(keying_speedup, 2)});
  t.add_row({"serve cache hit (us)", "-", util::fmt(t_hit * 1e6, 3), "-"});
  t.add_row({"serve near-miss (us/req)", util::fmt(t_nm_cold * 1e6, 3),
             util::fmt(t_nm_warm * 1e6, 3), util::fmt(nm_speedup, 2)});
  t.add_row({"near-miss search evals", util::fmt(nm_cold_out.search_evals),
             util::fmt(nm_warm_out.search_evals),
             util::fmt(nm_eval_ratio, 2)});
  bench::emit(t);

  std::ofstream json(out);
  json << "{\n"
       << "  \"kernel\": {\"generic_s\": " << t_generic
       << ", \"closed_form_s\": " << t_closed
       << ", \"speedup\": " << kernel_speedup << "},\n"
       << "  \"partition\": {\"virtual_s\": " << t_virtual
       << ", \"compiled_s\": " << t_compiled
       << ", \"speedup\": " << partition_speedup << "},\n"
       << "  \"server\": [";
  for (std::size_t i = 0; i < thread_counts.size(); ++i)
    json << (i ? ", " : "") << "{\"threads\": " << thread_counts[i]
         << ", \"requests\": " << requests
         << ", \"requests_per_s\": " << rates[i]
         << ", \"scaling\": " << rates[i] / rates[0] << "}";
  json << "],\n"
       << "  \"serve_hit\": {\"key_compile_s\": " << t_key_compile
       << ", \"key_fingerprint_s\": " << t_key_fp
       << ", \"keying_speedup\": " << keying_speedup
       << ", \"hit_s\": " << t_hit << "},\n"
       << "  \"near_miss\": {\"requests\": " << kNearMissRequests
       << ", \"cold_search_speed_evals\": " << nm_cold_out.search_evals
       << ", \"warm_search_speed_evals\": " << nm_warm_out.search_evals
       << ", \"search_eval_ratio\": " << nm_eval_ratio
       << ", \"warm_hits\": " << nm_warm_out.warm_hits
       << ", \"warm_stale\": " << nm_warm_out.warm_stale
       << ", \"cold_s_per_req\": " << t_nm_cold
       << ", \"warm_s_per_req\": " << t_nm_warm
       << ", \"speedup\": " << nm_speedup << "},\n"
       << "  \"metrics\": " << obs::metrics().to_json() << "}\n";
  std::cout << "wrote " << out << "\n";

  if (gate) {
    bool ok = true;
    if (kernel_speedup < 2.0) {
      std::cerr << "GATE FAIL: closed-form kernel speedup "
                << util::fmt(kernel_speedup, 2) << "x < 2x\n";
      ok = false;
    }
    // 15% tolerance absorbs timer noise; a real regression (losing the
    // devirtualized path) shows up far above it.
    if (t_compiled > t_virtual * 1.15) {
      std::cerr << "GATE FAIL: compiled partitioning "
                << util::fmt(t_compiled * 1e3, 3)
                << " ms slower than virtual baseline "
                << util::fmt(t_virtual * 1e3, 3) << " ms\n";
      ok = false;
    }
    // The fingerprint key skips entry/pool materialization entirely, so it
    // must beat compile-to-fingerprint comfortably; 1.2x leaves room for
    // timer noise on tiny ensembles.
    if (t_key_fp > t_key_compile / 1.2) {
      std::cerr << "GATE FAIL: fingerprint keying "
                << util::fmt(t_key_fp * 1e6, 3)
                << " us not faster than compile keying "
                << util::fmt(t_key_compile * 1e6, 3) << " us\n";
      ok = false;
    }
    // Deterministic counter check: the per-fingerprint slope hint must
    // collapse the search phase of every post-first miss.
    if (nm_eval_ratio < 3.0) {
      std::cerr << "GATE FAIL: near-miss search_speed_evals reduction "
                << util::fmt(nm_eval_ratio, 2) << "x < 3x\n";
      ok = false;
    }
    if (nm_warm_out.speed_evals > nm_cold_out.speed_evals) {
      std::cerr << "GATE FAIL: hinted near-miss speed_evals "
                << nm_warm_out.speed_evals << " exceed cold "
                << nm_cold_out.speed_evals << "\n";
      ok = false;
    }
    // The wall clock must follow the counters; 10% tolerance for noise.
    if (t_nm_warm > t_nm_cold * 1.1) {
      std::cerr << "GATE FAIL: hinted near-miss serve "
                << util::fmt(t_nm_warm * 1e6, 3)
                << " us/req slower than cold "
                << util::fmt(t_nm_cold * 1e6, 3) << " us/req\n";
      ok = false;
    }
    if (!ok) return 1;
    std::cout << "gate passed: kernel " << util::fmt(kernel_speedup, 2)
              << "x, partition " << util::fmt(partition_speedup, 2)
              << "x, keying " << util::fmt(keying_speedup, 2)
              << "x, near-miss evals " << util::fmt(nm_eval_ratio, 2)
              << "x (serve " << util::fmt(nm_speedup, 2) << "x)\n";
  }
  return 0;
}
