// Ablation D: the functional performance model versus the Divisible Load
// Theory baselines the paper cites ([17]-[19]). A star network distributes
// load from a master; we compare three schedulers on the *same* simulated
// truth (execution evaluated on the ground-truth speed curves, including
// paging):
//   * classic DLT      — constant compute rates measured in-core;
//   * out-of-core DLT  — Drozdowski/Wolniewicz-style two-rate model with
//                        the memory knee at each machine's paging onset;
//   * FPM partitioner  — the paper's functional-model distribution.
// Expected: classic DLT collapses once shares page; out-of-core DLT
// recovers most of the gap; the full functional model does best because it
// tracks the entire curve, not just a two-rate approximation.
#include <iostream>
#include <numeric>

#include "common.hpp"
#include "dlt/dlt.hpp"

int main() {
  using namespace fpm;
  auto cluster = sim::make_table2_cluster();
  const core::SpeedList truth = cluster.ground_truth_list(sim::kMatMul);
  const double fpe = 100.0;  // flops per element for this workload

  // True execution time of a share on machine i (band centre).
  const auto true_seconds = [&](std::size_t i, double share) {
    if (share <= 0.0) return 0.0;
    return share * fpe / (truth[i]->speed(share) * 1e6);
  };
  const auto true_makespan = [&](const std::vector<double>& shares) {
    double worst = 0.0;
    for (std::size_t i = 0; i < shares.size(); ++i)
      worst = std::max(worst, true_seconds(i, shares[i]));
    return worst;
  };

  util::Table t("Ablation D - FPM vs Divisible Load Theory baselines",
                {"load_elements", "t_dlt_classic_s", "t_dlt_outofcore_s",
                 "t_fpm_s"});
  for (const double V : {2e8, 5e8, 1e9, 2e9}) {
    // Classic DLT: constant rates measured at a healthy in-core size.
    std::vector<dlt::DltWorker> classic;
    std::vector<dlt::DltWorker> out_of_core;
    for (std::size_t i = 0; i < truth.size(); ++i) {
      const auto& machine = cluster.ground_truth(i, sim::kMatMul);
      const double onset = machine.paging_onset();
      const double in_rate = fpe / (machine.speed(onset * 0.5) * 1e6);
      classic.push_back(
          {0.0, 0.0, dlt::ComputeTime::constant_rate(in_rate), 1e18});
      out_of_core.push_back(dlt::worker_from_speed_function(
          machine, onset, fpe, 0.0, 0.0));
    }
    const dlt::DltSchedule s_classic =
        dlt::schedule_single_round(classic, V);
    const dlt::DltSchedule s_ooc =
        dlt::schedule_single_round(out_of_core, V);

    const core::Distribution fpm_dist =
        core::partition_combined(truth, static_cast<std::int64_t>(V))
            .distribution;
    std::vector<double> fpm_shares(fpm_dist.counts.size());
    for (std::size_t i = 0; i < fpm_shares.size(); ++i)
      fpm_shares[i] = static_cast<double>(fpm_dist.counts[i]);

    t.add_row({util::fmt(V, 0), util::fmt(true_makespan(s_classic.shares), 1),
               util::fmt(true_makespan(s_ooc.shares), 1),
               util::fmt(true_makespan(fpm_shares), 1)});
  }
  bench::emit(t);
  std::cout << "Expected shape: all three agree while everything fits in "
               "memory; past the paging knees classic DLT degrades sharply, "
               "two-rate DLT recovers most of it, FPM is best or tied.\n";
  return 0;
}
