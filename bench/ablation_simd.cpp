// SIMD / thousand-rank scaling ablation: synthetic heterogeneous fleets at
// p in {16, 256, 1024, 4096} (core/fleetgen.hpp), solved end to end and
// swept through CompiledSpeedList::intersect_all with the vector kernels on
// and off.
//
// Written to BENCH_solve.json: one record with the SIMD build/runtime
// state, the measured vector-over-scalar batch speedup, and a per-p sweep
// of single-solve wall clock plus the operation counters (the same
// trajectory schema the solve dashboards read).
//
// `--gate` turns the run into a CI check; it fails when
//  (a) the vector batch path is < 2x the scalar batch path on a
//      closed-form-heavy fleet at any p >= 256 (skipped when the build has
//      no vector kernels or the host cannot run them — the scalar fallback
//      is then the contract, not a regression),
//  (b) the 8-wide AVX-512 variant loses to the best 4-wide variant
//      (< 0.95x of it at p >= 256) or fails to show its width (< 1.3x of
//      it at p >= 1024) — skipped, not failed, when the build or CPU has
//      no 8-wide variant,
//  (c) the batched fine-tune epilogue sweep (speeds_at) is < 2x the
//      per-entry virtual loop it replaced at any p >= 256 (same skip rule),
//  (d) the p = 4096 solve exceeds the paper's O(p^2 log2 n) intersection
//      bound (the test suite's guard constant: 8 p^2 log2 n) or an
//      intentionally loose wall-clock ceiling,
//  (e) any registry algorithm's SIMD distribution fails the equivalence
//      gate against the scalar oracle: exact sum to n, per-intersect
//      agreement at the oracle's final slope within a 1e-12 relative
//      tolerance, and a makespan within 1e-9 of the oracle's (fine-tune
//      optimality carries over even when few-ULP slope differences break
//      element-wise ties differently).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/detail/simd.hpp"
#include "core/fleetgen.hpp"
#include "core/fpm.hpp"
#include "util/timer.hpp"

namespace {

using namespace fpm;

constexpr std::int64_t kN = 1'000'000'000;
constexpr std::uint64_t kSeed = 42;
const std::vector<std::size_t> kSweepP{16, 256, 1024, 4096};

/// Closed-form-heavy mix for the kernel speedup measurement: the lanes the
/// vector kernels accelerate, weighted the way a large CPU fleet models out
/// (power/exp decay dominating, no piecewise tails).
core::FleetMix closed_form_mix() {
  core::FleetMix mix;
  mix.constant = 0.05;
  mix.linear_decay = 0.15;
  mix.power_decay = 0.40;
  mix.exp_decay = 0.40;
  mix.piecewise = 0.0;
  mix.stepped = 0.0;
  return mix;
}

/// RAII around the global SIMD toggle.
struct SimdToggle {
  explicit SimdToggle(bool on) : prev(core::simd_kernels_enabled()) {
    core::set_simd_kernels(on);
  }
  ~SimdToggle() { core::set_simd_kernels(prev); }
  bool prev;
};

/// Best-of-reps seconds for one full intersect_all sweep over `slopes`.
double sweep_seconds(const core::CompiledSpeedList& c,
                     const std::vector<double>& slopes,
                     std::vector<double>& out, int reps) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    util::Timer timer;
    for (const double s : slopes) {
      c.intersect_all(s, out);
      benchmark::DoNotOptimize(out.data());
    }
    best = std::min(best, timer.seconds());
  }
  return best;
}

/// Vector-over-scalar batch speedup at one p (1.0 when no vector kernels).
double measure_speedup(std::size_t p) {
  const core::SyntheticFleet fleet =
      core::make_synthetic_fleet(p, kSeed, closed_form_mix());
  const auto c = core::CompiledSpeedList::compile(fleet.list());
  std::vector<double> slopes;
  for (int i = 0; i < 64; ++i)
    slopes.push_back(1e-4 * std::pow(10.0, 8.0 * i / 63.0));
  std::vector<double> out(p);
  double t_simd = 0.0, t_scalar = 0.0;
  {
    SimdToggle on(true);
    t_simd = sweep_seconds(c, slopes, out, 5);
  }
  {
    SimdToggle off(false);
    t_scalar = sweep_seconds(c, slopes, out, 5);
  }
  return t_scalar / t_simd;
}

/// Per-backend vector-over-scalar speedup on one closed-form-heavy fleet.
struct BackendSpeedup {
  std::size_t p = 0;
  const char* name = "";
  std::size_t width = 0;
  double speedup = 0.0;
};

/// Measures every runnable compiled-in variant against the scalar batch
/// path at one p (the power/exp lanes dominate the closed-form-heavy mix,
/// so this is the ISA comparison the width upgrade is about).
std::vector<BackendSpeedup> measure_backend_speedups(std::size_t p) {
  std::vector<BackendSpeedup> out_rows;
  const core::SyntheticFleet fleet =
      core::make_synthetic_fleet(p, kSeed, closed_form_mix());
  const auto c = core::CompiledSpeedList::compile(fleet.list());
  std::vector<double> slopes;
  for (int i = 0; i < 64; ++i)
    slopes.push_back(1e-4 * std::pow(10.0, 8.0 * i / 63.0));
  std::vector<double> out(p);
  double t_scalar = 0.0;
  {
    SimdToggle off(false);
    t_scalar = sweep_seconds(c, slopes, out, 5);
  }
  for (const auto* k : core::detail::simd::compiled_simd_variants()) {
    if (!core::detail::simd::simd_variant_supported(*k)) continue;
    core::force_simd_backend(k->name);
    const double t = sweep_seconds(c, slopes, out, 5);
    out_rows.push_back({p, k->name, k->width, t_scalar / t});
  }
  core::force_simd_backend("auto");
  return out_rows;
}

/// Batched-vs-per-entry speedup of the fine-tune epilogue's speed sweep:
/// speeds_at (one vectorized pass) against the per-entry virtual loop it
/// replaced, on the closed-form-heavy fleet at one p.
double measure_epilogue_speedup(std::size_t p) {
  const core::SyntheticFleet fleet =
      core::make_synthetic_fleet(p, kSeed, closed_form_mix());
  const core::SpeedList list = fleet.list();
  const auto c = core::CompiledSpeedList::compile(list);
  std::vector<double> xs(p);
  for (std::size_t i = 0; i < p; ++i)
    xs[i] = 1.0 + static_cast<double>((i * 37) % 100000);
  std::vector<double> out(p);
  constexpr int kSweeps = 64;
  double t_batched = std::numeric_limits<double>::infinity();
  double t_scalar = std::numeric_limits<double>::infinity();
  SimdToggle on(true);
  for (int r = 0; r < 5; ++r) {
    util::Timer timer;
    for (int s = 0; s < kSweeps; ++s) {
      c.speed_all(xs, out);
      benchmark::DoNotOptimize(out.data());
    }
    t_batched = std::min(t_batched, timer.seconds());
  }
  for (int r = 0; r < 5; ++r) {
    util::Timer timer;
    for (int s = 0; s < kSweeps; ++s) {
      for (std::size_t i = 0; i < p; ++i) out[i] = list[i]->speed(xs[i]);
      benchmark::DoNotOptimize(out.data());
    }
    t_scalar = std::min(t_scalar, timer.seconds());
  }
  return t_scalar / t_batched;
}

/// Largest completion time of an integer allocation under `speeds`.
double makespan(const core::SpeedList& speeds,
                const std::vector<std::int64_t>& counts) {
  double worst = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] <= 0) continue;
    const double x = static_cast<double>(counts[i]);
    worst = std::max(worst, x / speeds[i]->speed(x));
  }
  return worst;
}

std::int64_t sum(const std::vector<std::int64_t>& counts) {
  std::int64_t s = 0;
  for (const std::int64_t c : counts) s += c;
  return s;
}

struct SweepRow {
  std::size_t p = 0;
  double solve_s = 0.0;
  int iterations = 0;
  std::int64_t speed_evals = 0;
  std::int64_t intersect_solves = 0;
  bool bit_identical = true;
};

/// One timed solve (combined policy) with the SIMD kernels on, compared
/// against the scalar-oracle distribution of the same problem.
SweepRow solve_row(std::size_t p) {
  const core::SyntheticFleet fleet = core::make_synthetic_fleet(p, kSeed);
  const core::SpeedList list = fleet.list();
  SweepRow row;
  row.p = p;

  core::PartitionResult oracle;
  {
    SimdToggle off(false);
    oracle = core::partition(list, kN);
  }
  core::PartitionResult simd;
  {
    SimdToggle on(true);
    util::Timer timer;
    simd = core::partition(list, kN);
    row.solve_s = timer.seconds();
  }
  row.iterations = simd.stats.iterations;
  row.speed_evals = simd.stats.speed_evals;
  row.intersect_solves = simd.stats.intersect_solves;
  row.bit_identical =
      simd.distribution.counts == oracle.distribution.counts;
  return row;
}

struct EquivalenceRow {
  std::string algorithm;
  bool sum_ok = false;
  bool makespan_ok = false;
  bool intersects_ok = false;
  double worst_rel = 0.0;
  double makespan_rel = 0.0;
  bool ok() const { return sum_ok && makespan_ok && intersects_ok; }
};

/// SIMD-vs-scalar-oracle equivalence for one registry algorithm on one
/// mixed fleet: exact sum to n, per-intersect ULP tolerance at the oracle's
/// final slope, and matching makespan.
EquivalenceRow check_equivalence(const core::SpeedList& list,
                                 const std::string& algorithm,
                                 std::int64_t n) {
  EquivalenceRow row;
  row.algorithm = algorithm;
  core::PartitionPolicy policy;
  policy.algorithm = algorithm;

  core::PartitionResult oracle;
  {
    SimdToggle off(false);
    oracle = core::partition(list, n, policy);
  }
  core::PartitionResult simd;
  {
    SimdToggle on(true);
    simd = core::partition(list, n, policy);
  }

  row.sum_ok = sum(simd.distribution.counts) == n &&
               sum(oracle.distribution.counts) == n;

  const double span_simd = makespan(list, simd.distribution.counts);
  const double span_oracle = makespan(list, oracle.distribution.counts);
  row.makespan_rel =
      std::abs(span_simd - span_oracle) / std::max(span_oracle, 1e-300);
  row.makespan_ok = row.makespan_rel <= 1e-9;

  // Per-intersect comparison at the oracle's final slope: every entry of
  // the vector intersect_all within 1e-12 relative of the scalar batch.
  const auto c = core::CompiledSpeedList::compile(list);
  std::vector<double> xs_simd(list.size()), xs_scalar(list.size());
  const double slope = oracle.stats.final_slope > 0.0
                           ? oracle.stats.final_slope
                           : 1.0;
  {
    SimdToggle on(true);
    c.intersect_all(slope, xs_simd);
  }
  {
    SimdToggle off(false);
    c.intersect_all(slope, xs_scalar);
  }
  row.worst_rel = 0.0;
  for (std::size_t i = 0; i < list.size(); ++i) {
    const double denom = std::max(std::abs(xs_scalar[i]), 1e-300);
    row.worst_rel =
        std::max(row.worst_rel, std::abs(xs_simd[i] - xs_scalar[i]) / denom);
  }
  row.intersects_ok = row.worst_rel <= 1e-12;
  return row;
}

/// Scientific-notation cell for the tiny relative-error columns.
std::string sci(double v) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(2) << v;
  return os.str();
}

void BM_IntersectAllSimd(benchmark::State& state) {
  const core::SyntheticFleet fleet =
      core::make_synthetic_fleet(1024, kSeed, closed_form_mix());
  const auto c = core::CompiledSpeedList::compile(fleet.list());
  std::vector<double> out(1024);
  SimdToggle on(true);
  for (auto _ : state) {
    c.intersect_all(37.5, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_IntersectAllSimd)->Unit(benchmark::kMicrosecond);

void BM_IntersectAllScalar(benchmark::State& state) {
  const core::SyntheticFleet fleet =
      core::make_synthetic_fleet(1024, kSeed, closed_form_mix());
  const auto c = core::CompiledSpeedList::compile(fleet.list());
  std::vector<double> out(1024);
  SimdToggle off(false);
  for (auto _ : state) {
    c.intersect_all(37.5, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_IntersectAllScalar)->Unit(benchmark::kMicrosecond);

void BM_SolveP4096(benchmark::State& state) {
  const core::SyntheticFleet fleet = core::make_synthetic_fleet(4096, kSeed);
  const core::SpeedList list = fleet.list();
  for (auto _ : state)
    benchmark::DoNotOptimize(core::partition(list, kN).distribution.total());
}
BENCHMARK(BM_SolveP4096)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool gate = false;
  std::string out = "BENCH_solve.json";
  // Strip our own flags before google-benchmark sees (and rejects) them.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gate") == 0)
      gate = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out = argv[++i];
    else
      argv[kept++] = argv[i];
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const bool compiled_in =
      core::active_simd_backend() != core::SimdBackend::Disabled ||
      core::simd_kernels_available();
  const bool available = core::simd_kernels_available();
  bool ok = true;

  // --- Vector-over-scalar batch speedup at every p >= 256. -------------
  double min_speedup = std::numeric_limits<double>::infinity();
  util::Table t_speed("SIMD batch speedup (closed-form-heavy fleets)",
                      {"p", "speedup", "gate"});
  for (const std::size_t p : kSweepP) {
    if (p < 256) continue;
    const double s = measure_speedup(p);
    min_speedup = std::min(min_speedup, s);
    const bool pass = !available || s >= 2.0;
    t_speed.add_row({util::fmt(static_cast<std::int64_t>(p)),
                     util::fmt(s, 2) + "x",
                     available ? (pass ? "pass (>= 2x)" : "FAIL (< 2x)")
                               : "skipped (no vector kernels)"});
    if (!pass) {
      std::cerr << "GATE FAIL: SIMD batch speedup " << util::fmt(s, 2)
                << "x < 2x at p = " << p << "\n";
      ok = false;
    }
  }
  bench::emit(t_speed);

  // --- Per-backend speedups and the wide-vs-narrow gates. --------------
  // AVX-512 must never lose to the best 4-wide variant on the power/exp
  // lanes (>= 0.95x at p >= 256 allows measurement noise) and must show its
  // width (>= 1.3x over 4-wide) once p reaches 1024. Skipped — not failed —
  // when this build or CPU has no 8-wide variant: the 4-wide fallback is
  // the contract there.
  std::vector<BackendSpeedup> backend_rows;
  util::Table t_backend("per-backend batch speedup vs scalar",
                        {"p", "backend", "width", "speedup"});
  for (const std::size_t p : kSweepP) {
    if (p < 256) continue;
    double wide = 0.0, narrow = 0.0;
    for (const BackendSpeedup& b : measure_backend_speedups(p)) {
      backend_rows.push_back(b);
      t_backend.add_row({util::fmt(static_cast<std::int64_t>(b.p)), b.name,
                         util::fmt(static_cast<std::int64_t>(b.width)),
                         util::fmt(b.speedup, 2) + "x"});
      if (b.width >= 8)
        wide = std::max(wide, b.speedup);
      else
        narrow = std::max(narrow, b.speedup);
    }
    if (wide > 0.0 && narrow > 0.0) {
      if (wide < 0.95 * narrow) {
        std::cerr << "GATE FAIL: avx512 " << util::fmt(wide, 2)
                  << "x slower than best 4-wide " << util::fmt(narrow, 2)
                  << "x at p = " << p << "\n";
        ok = false;
      }
      if (p >= 1024 && wide < 1.3 * narrow) {
        std::cerr << "GATE FAIL: avx512 " << util::fmt(wide, 2)
                  << "x < 1.3x the best 4-wide " << util::fmt(narrow, 2)
                  << "x at p = " << p << "\n";
        ok = false;
      }
    }
  }
  bench::emit(t_backend);

  // --- Fine-tune epilogue: batched speeds_at vs the per-entry loop. ----
  double min_epilogue = std::numeric_limits<double>::infinity();
  util::Table t_epi("fine-tune epilogue speed sweep (speeds_at vs per-entry)",
                    {"p", "speedup", "gate"});
  for (const std::size_t p : kSweepP) {
    if (p < 256) continue;
    const double s = measure_epilogue_speedup(p);
    min_epilogue = std::min(min_epilogue, s);
    const bool pass = !available || s >= 2.0;
    t_epi.add_row({util::fmt(static_cast<std::int64_t>(p)),
                   util::fmt(s, 2) + "x",
                   available ? (pass ? "pass (>= 2x)" : "FAIL (< 2x)")
                             : "skipped (no vector kernels)"});
    if (!pass) {
      std::cerr << "GATE FAIL: batched epilogue sweep " << util::fmt(s, 2)
                << "x < 2x at p = " << p << "\n";
      ok = false;
    }
  }
  bench::emit(t_epi);

  // --- Per-p solve trajectory (the BENCH_solve.json sweep). ------------
  util::Table t_sweep("single-solve scaling sweep (n = " + util::fmt(kN) +
                          ")",
                      {"p", "solve (ms)", "iterations", "speed evals",
                       "intersect solves", "simd vs scalar"});
  std::vector<SweepRow> rows;
  for (const std::size_t p : kSweepP) {
    rows.push_back(solve_row(p));
    const SweepRow& r = rows.back();
    t_sweep.add_row({util::fmt(static_cast<std::int64_t>(r.p)),
                     util::fmt(r.solve_s * 1e3, 3), util::fmt(r.iterations),
                     util::fmt(r.speed_evals), util::fmt(r.intersect_solves),
                     r.bit_identical ? "bit-identical" : "ULP-equivalent"});
    if (r.p == 4096) {
      const double bound =
          8.0 * static_cast<double>(r.p) * static_cast<double>(r.p) *
          std::log2(static_cast<double>(kN));
      if (static_cast<double>(r.intersect_solves) > bound) {
        std::cerr << "GATE FAIL: p=4096 intersect_solves "
                  << r.intersect_solves << " exceed 8 p^2 log2 n = " << bound
                  << "\n";
        ok = false;
      }
      // Intentionally loose: catches only order-of-magnitude regressions,
      // not scheduler noise (a p=4096 solve runs ~tens of ms).
      if (r.solve_s > 5.0) {
        std::cerr << "GATE FAIL: p=4096 solve took " << util::fmt(r.solve_s, 3)
                  << "s > 5s\n";
        ok = false;
      }
    }
  }
  bench::emit(t_sweep);

  // --- Registry-wide equivalence against the scalar oracle. ------------
  const core::SyntheticFleet fleet = core::make_synthetic_fleet(512, kSeed);
  const core::SpeedList list = fleet.list();
  util::Table t_equiv("SIMD equivalence vs scalar oracle (p = 512)",
                      {"algorithm", "sum == n", "worst intersect rel",
                       "makespan rel", "verdict"});
  for (const core::PartitionerInfo& info :
       core::partitioner_registry().entries()) {
    const EquivalenceRow r = check_equivalence(list, info.id, kN);
    t_equiv.add_row({r.algorithm, r.sum_ok ? "yes" : "NO",
                     sci(r.worst_rel),
                     sci(r.makespan_rel),
                     r.ok() ? "equivalent" : "MISMATCH"});
    if (!r.ok()) {
      std::cerr << "GATE FAIL: " << r.algorithm
                << " SIMD distribution not equivalent to the scalar oracle"
                << " (sum_ok=" << r.sum_ok << ", worst_rel=" << r.worst_rel
                << ", makespan_rel=" << r.makespan_rel << ")\n";
      ok = false;
    }
  }
  bench::emit(t_equiv);

  // --- BENCH_solve.json trajectory. ------------------------------------
  std::ofstream json(out);
  json << "[\n  {\"bench\": \"ablation_simd\", \"n\": " << kN
       << ", \"simd_compiled_in\": " << (compiled_in ? "true" : "false")
       << ", \"simd_available\": " << (available ? "true" : "false")
       << ", \"simd_backend\": \""
       << core::to_string(core::active_simd_backend())
       << "\", \"simd_speedup\": " << util::fmt(min_speedup, 6)
       << ", \"epilogue_speedup\": " << util::fmt(min_epilogue, 6) << ",\n"
       << "   \"backends\": [\n";
  for (std::size_t i = 0; i < backend_rows.size(); ++i) {
    const BackendSpeedup& b = backend_rows[i];
    json << "    {\"p\": " << b.p << ", \"name\": \"" << b.name
         << "\", \"width\": " << b.width
         << ", \"speedup\": " << util::fmt(b.speedup, 6) << "}"
         << (i + 1 < backend_rows.size() ? ", " : "") << "\n";
  }
  json << "  ],\n"
       << "   \"sweep\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    json << "    {\"p\": " << r.p << ", \"solve_s\": "
         << util::fmt(r.solve_s, 6) << ", \"iterations\": " << r.iterations
         << ", \"speed_evals\": " << r.speed_evals
         << ", \"intersect_solves\": " << r.intersect_solves
         << ", \"simd_bit_identical\": "
         << (r.bit_identical ? "true" : "false") << "}"
         << (i + 1 < rows.size() ? ", " : "") << "\n";
  }
  json << "  ]}\n]\n";
  std::cout << "wrote " << out << "\n";

  if (gate) {
    if (!ok) return 1;
    std::cout << "gate passed\n";
  }
  return ok ? 0 : 1;
}
