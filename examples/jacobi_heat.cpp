// Heat-diffusion (Jacobi) simulation on the heterogeneous network: a third
// application domain from the paper's introduction ("simulation,
// experimental data processing"). Bands of the grid are sized by the
// functional model; halo exchanges follow the two-parameter link model.
//
// Build & run:  ./examples/jacobi_heat
#include <iostream>

#include "apps/stencil.hpp"
#include "linalg/kernels.hpp"
#include "simcluster/presets.hpp"
#include "util/table.hpp"

int main() {
  using namespace fpm;
  auto cluster = sim::make_table2_cluster();
  const sim::ClusterModels models =
      sim::build_cluster_models(cluster, sim::kMatMul);

  // --- Numerics: the striped sweep is bit-identical to the serial one. ---
  const apps::StencilPlan small = apps::plan_stencil(models.list(), 64, 64);
  const util::MatrixD grid = linalg::random_matrix(64, 64, 5);
  std::cout << "64x64 sweep: max |striped - serial| = "
            << util::max_abs_diff(apps::striped_jacobi_sweep(grid, small),
                                  apps::jacobi_sweep(grid))
            << "\n\n";

  // --- Production-scale decomposition. ---
  const std::int64_t rows = 20000, cols = 20000;
  const apps::StencilPlan plan = apps::plan_stencil(models.list(), rows, cols);
  util::Table t("band sizes for a 20000x20000 grid", {"machine", "rows"});
  for (std::size_t i = 0; i < cluster.size(); ++i)
    t.add_row({cluster.machine(i).spec.name, util::fmt(plan.rows[i])});
  t.print(std::cout);

  const comm::CommModel ethernet =
      comm::CommModel::uniform(cluster.size(), {1e-4, 12.5e6});
  apps::StencilPlan even = plan;
  even.rows = core::partition_even(rows, cluster.size()).counts;
  const int iters = 100;
  const double t_func = apps::simulate_stencil_seconds(
      cluster, sim::kMatMul, plan, iters, ethernet, false);
  const double t_even = apps::simulate_stencil_seconds(
      cluster, sim::kMatMul, even, iters, ethernet, false);
  std::cout << "\n" << iters << " iterations on 100 Mbit Ethernet:\n";
  std::cout << "  functional bands : " << util::fmt(t_func, 1) << " s\n";
  std::cout << "  even bands       : " << util::fmt(t_even, 1) << " s  ("
            << util::fmt(t_even / t_func, 2) << "x slower)\n";
  return 0;
}
