// Quickstart: the fpmlib workflow in ~60 lines.
//
//  1. Describe (or measure) each processor's speed as a function of the
//     problem size — here three machines with very different memory systems.
//  2. Partition n elements through the policy engine (default: the
//     combined algorithm).
//  3. Compare against the classic single-number distribution.
//
// Build & run:  ./examples/quickstart
#include <iostream>
#include <memory>

#include "core/fpm.hpp"

int main() {
  using namespace fpm::core;

  // Three heterogeneous processors. Speeds are in MFlops, problem sizes in
  // elements; each curve satisfies the single-intersection shape
  // requirement (speed(x)/x strictly decreasing).
  //
  //  * "big"    — fast CPU, plenty of RAM: flat plateau, late paging cliff.
  //  * "medium" — mid CPU, smooth cache decay.
  //  * "small"  — slow CPU and little RAM: pages early.
  std::vector<std::shared_ptr<const SpeedFunction>> owned;
  owned.push_back(std::make_shared<SteppedSpeed>(
      400.0,
      std::vector<SteppedSpeed::Step>{{2e6, 340.0, 5e5}, {3e8, 15.0, 3e7}},
      1.2e9));
  owned.push_back(std::make_shared<PowerDecaySpeed>(220.0, 4e7, 0.9, 1e9));
  owned.push_back(std::make_shared<SteppedSpeed>(
      150.0,
      std::vector<SteppedSpeed::Step>{{5e5, 120.0, 2e5}, {3e7, 4.0, 3e6}},
      2.4e8));
  const SpeedList speeds = make_speed_list(owned);
  const std::vector<std::string> names{"big", "medium", "small"};

  const std::int64_t n = 100'000'000;  // 100M elements to distribute

  // Functional-model partitioning (the paper's contribution). The default
  // PartitionPolicy selects the combined algorithm; pass e.g.
  // parse_policy("modified") to switch without touching the call site.
  const PartitionResult functional = partition(speeds, n);

  // The classic baseline: one speed per processor, measured at some fixed
  // reference size — here 10M elements, where "small" still looks healthy.
  const Distribution single = partition_single_number_at(speeds, n, 1e7);

  std::cout << "Distributing " << n << " elements over 3 processors\n\n";
  std::cout << "processor   functional        single-number\n";
  for (std::size_t i = 0; i < speeds.size(); ++i)
    std::cout << "  " << names[i] << "\t    " << functional.distribution.counts[i]
              << "   \t" << single.counts[i] << "\n";

  std::cout << "\nparallel execution time (x/s(x), relative units):\n";
  std::cout << "  functional    : " << makespan(speeds, functional.distribution)
            << "\n";
  std::cout << "  single-number : " << makespan(speeds, single) << "\n";
  std::cout << "  speedup       : "
            << makespan(speeds, single) /
                   makespan(speeds, functional.distribution)
            << "x\n\n";
  std::cout << "search: " << functional.stats.iterations << " bisection steps, "
            << functional.stats.intersections << " line-curve intersections ("
            << functional.stats.algorithm << " algorithm)\n";
  std::cout << "\nWhy the baseline loses: at the reference size every machine "
               "looks healthy,\nso 'small' receives far more than its memory "
               "can hold and pages itself to a crawl.\n";
  return 0;
}
