// Striped matrix multiplication on the paper's twelve-machine network
// (Table 2): the full pipeline — build functional models from (simulated)
// measurements with the §3.1 procedure, plan the striped distribution,
// verify the numerics on a small real multiplication, then simulate the
// paper-scale runs and compare against the single-number model.
//
// Build & run:  ./examples/matmul_striped
#include <iostream>

#include "apps/striped_mm.hpp"
#include "linalg/kernels.hpp"
#include "simcluster/presets.hpp"
#include "util/table.hpp"

int main() {
  using namespace fpm;

  std::cout << "== Striped C = A*B^T on the Table-2 network ==\n\n";
  auto cluster = sim::make_table2_cluster();

  std::cout << "Building functional models with the trisection procedure...\n";
  const sim::ClusterModels models =
      sim::build_cluster_models(cluster, sim::kMatMul);
  for (std::size_t i = 0; i < cluster.size(); ++i)
    std::cout << "  " << cluster.machine(i).spec.name << ": "
              << models.probes[i] << " experimental runs, "
              << models.curves[i].points().size() << " breakpoints\n";

  // --- Small real run: the striped computation is numerically exact. ---
  const std::int64_t n_small = 96;
  const apps::StripedMmPlan small_plan = apps::plan_striped_mm(
      models.list(), n_small, apps::ModelKind::Functional);
  const util::MatrixD a = linalg::random_matrix(n_small, n_small, 1);
  const util::MatrixD b = linalg::random_matrix(n_small, n_small, 2);
  const util::MatrixD striped = apps::striped_mm_compute(a, b, small_plan);
  const util::MatrixD serial = linalg::matmul_abt_naive(a, b);
  std::cout << "\nReal " << n_small << "x" << n_small
            << " run: max |striped - serial| = "
            << util::max_abs_diff(striped, serial) << "\n";

  // --- Paper-scale simulated run. ---
  const std::int64_t n = 25000;
  const auto functional =
      apps::plan_striped_mm(models.list(), n, apps::ModelKind::Functional);
  const auto single =
      apps::plan_striped_mm(models.list(), n, apps::ModelKind::SingleNumber,
                            500);

  util::Table t("n = 25000: rows per machine",
                {"machine", "functional_rows", "single_number_rows"});
  for (std::size_t i = 0; i < cluster.size(); ++i)
    t.add_row({cluster.machine(i).spec.name,
               util::fmt(functional.rows[i]), util::fmt(single.rows[i])});
  t.print(std::cout);

  const double tf = apps::simulate_striped_mm_seconds(cluster, sim::kMatMul,
                                                      functional, n, false);
  const double ts = apps::simulate_striped_mm_seconds(cluster, sim::kMatMul,
                                                      single, n, false);
  std::cout << "\nsimulated makespan, functional model : " << util::fmt(tf, 0)
            << " s\n";
  std::cout << "simulated makespan, single-number    : " << util::fmt(ts, 0)
            << " s\n";
  std::cout << "speedup                              : " << util::fmt(ts / tf, 2)
            << "x (paper Figure 22a reports 1.5-2.7x in this range)\n";
  return 0;
}
