// Model-builder walkthrough: watch the §3.1 trisection procedure construct
// a piece-wise-linear performance band for one machine from noisy
// measurements, then compare the built curve against the hidden ground
// truth. Optionally (--real) measure THIS machine's naive matrix
// multiplication speed function with real kernel runs.
//
// Build & run:  ./examples/model_builder_demo [--real]
#include <cstring>
#include <iostream>

#include "core/builder.hpp"
#include "linalg/real_source.hpp"
#include "simcluster/presets.hpp"
#include "util/table.hpp"

namespace {

using namespace fpm;

void demo_simulated() {
  auto cluster = sim::make_table2_cluster();
  const std::size_t machine = 7;  // X8: 1977 MHz Xeon, 134 MB free
  const sim::MachineSpeed& truth = cluster.ground_truth(machine, sim::kMatMul);
  std::cout << "Machine X8 ground truth (hidden from the builder): peak "
            << util::fmt(truth.peak_speed(), 0) << " MFlops, paging onset "
            << util::fmt(truth.paging_onset(), 0) << " elements\n\n";

  sim::MachineMeasurement source(cluster, machine, sim::kMatMul);
  core::BuilderOptions opts;
  opts.epsilon = 0.08;
  opts.samples_per_point = 5;
  opts.min_size = truth.cache_capacity() * 0.25;
  opts.max_size = truth.max_size();
  opts.min_interval = (opts.max_size - opts.min_size) / 256.0;
  const core::BuiltModel built = core::build_speed_band(source, opts);

  std::cout << "Builder consumed " << built.probes
            << " experimental runs and produced "
            << built.band.lower_points().size() << " band breakpoints.\n\n";

  const core::PiecewiseLinearSpeed centre = built.band.center();
  util::Table t("built model vs ground truth",
                {"size_elements", "truth_MFlops", "model_MFlops", "err_pct"});
  for (double x = opts.min_size * 4.0; x < opts.max_size; x *= 2.2) {
    const double s_true = truth.speed(x);
    const double s_model = centre.speed(x);
    t.add_row({util::fmt(x, 0), util::fmt(s_true, 1), util::fmt(s_model, 1),
               util::fmt(100.0 * (s_model - s_true) / s_true, 1)});
  }
  t.print(std::cout);
}

void demo_real() {
  std::cout << "\nMeasuring THIS machine's naive matrix multiplication "
               "speed function (real runs)...\n";
  linalg::RealKernelSource source(linalg::Kernel::MatMulNaive);
  core::BuilderOptions opts;
  opts.epsilon = 0.10;
  // Keep the real experiment quick: up to ~500x500 matrices (3*500^2
  // elements) and a tight probe budget.
  opts.min_size = 3.0 * 48 * 48;
  opts.max_size = 3.0 * 500 * 500;
  opts.max_probes = 16;
  const core::BuiltModel built = core::build_speed_band(source, opts);
  util::Table t("this machine, naive MM", {"elements", "measured_MFlops"});
  for (const core::SpeedPoint& p : built.probed)
    t.add_row({util::fmt(p.size, 0), util::fmt(p.speed, 1)});
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  demo_simulated();
  if (argc > 1 && std::strcmp(argv[1], "--real") == 0) demo_real();
  return 0;
}
