// Dynamic load balancing for an iterative application: per-iteration
// timings feed online models; when a heavy job lands on the fastest
// machine mid-run, the rebalancer notices within a few iterations and
// shifts work away — no offline re-benchmarking needed.
//
// Build & run:  ./examples/iterative_balance
#include <iostream>

#include "balance/iterative_sim.hpp"
#include "simcluster/presets.hpp"
#include "util/table.hpp"

int main() {
  using namespace fpm;
  auto cluster = sim::make_table2_cluster(77);

  balance::IterativeOptions opts;
  opts.n = 4'000'000;
  opts.iterations = 40;
  opts.flops_per_element = 150.0;
  opts.policy = balance::BalancePolicy::Online;
  opts.rebalance.imbalance_threshold = 0.10;

  // A heavy external job lands on X3 at iteration 12.
  const std::vector<balance::DriftEvent> drift{{12, 2, 0.8}};

  const balance::IterativeResult online =
      balance::simulate_iterative(cluster, sim::kMatMul, opts, drift);

  auto cluster2 = sim::make_table2_cluster(77);
  opts.policy = balance::BalancePolicy::StaticFunctional;
  const balance::IterativeResult fixed =
      balance::simulate_iterative(cluster2, sim::kMatMul, opts, drift);

  util::Table t("per-iteration wall time (s)",
                {"iteration", "static_functional", "online"});
  for (std::size_t it = 0; it < online.iteration_seconds.size(); it += 4)
    t.add_row({util::fmt(it), util::fmt(fixed.iteration_seconds[it], 2),
               util::fmt(online.iteration_seconds[it], 2)});
  t.print(std::cout);

  std::cout << "\ntotals: static-functional " << util::fmt(fixed.total_seconds, 1)
            << " s, online " << util::fmt(online.total_seconds, 1) << " s ("
            << online.repartitions << " repartitions)\n";
  std::cout << "The heavy job lands on X3 at iteration 12; watch the static "
               "policy's iteration time jump and stay high while the online "
               "policy recovers.\n";
  return 0;
}
