// Fault-tolerant Jacobi stencil: four ranks iterate a heat grid on the mpp
// runtime while an injected fault kills one machine mid-run. The survivors
// detect the failure, re-run the FPM partitioner over the remaining speed
// curves, roll back to the last complete checkpoint, and finish — with a
// result bit-identical to the fault-free serial reference.
//
// Build & run:  ./examples/fault_tolerant_stencil
#include <iostream>

#include "apps/stencil.hpp"
#include "core/combined.hpp"
#include "core/speed_function.hpp"
#include "linalg/kernels.hpp"
#include "mpp/fault.hpp"
#include "mpp/recovery.hpp"
#include "util/table.hpp"

int main() {
  using namespace fpm;
  const int ranks = 4;
  const int iterations = 12;
  const std::size_t n = 64;
  const int victim = 2;
  const int crash_step = 5;

  // A heterogeneous quartet: rank 0 twice as fast as the slowest pair.
  const std::vector<double> mflops{400.0, 300.0, 200.0, 200.0};
  std::vector<core::ConstantSpeed> owned;
  for (const double s : mflops) owned.emplace_back(s, 1e12);
  core::SpeedList speeds;
  for (const auto& f : owned) speeds.push_back(&f);

  // A hot plate: fixed 100-degree top edge, cold interior.
  util::MatrixD grid(n, n);
  for (std::size_t c = 0; c < n; ++c) grid(0, c) = 100.0;

  mpp::FaultPlan plan;
  plan.crash(victim, crash_step);

  mpp::FaultToleranceOptions options;
  options.speeds = speeds;
  options.faults = &plan;
  options.timeout_seconds = 10.0;

  std::cout << "fault-tolerant Jacobi: " << ranks << " ranks, " << iterations
            << " iterations, rank " << victim << " crashes at iteration "
            << crash_step << "\n\n";

  const mpp::FtJacobiResult result =
      mpp::fault_tolerant_jacobi(grid, ranks, iterations, options);

  // Initial distribution = the same partition over all ranks the kernel
  // started from, recomputed here for the report.
  std::vector<core::GranularSpeedView> views;
  for (const auto* f : speeds)
    views.emplace_back(*f, static_cast<double>(n));
  core::SpeedList rows_speeds;
  for (const auto& v : views) rows_speeds.push_back(&v);
  const core::Distribution before =
      core::partition(rows_speeds, static_cast<std::int64_t>(n), options.policy)
          .distribution;

  util::Table t("row distribution", {"rank", "MFLOPS", "before", "after"});
  for (int r = 0; r < ranks; ++r) {
    std::string after = util::fmt(result.final_rows[r]);
    if (r == victim) after += "  (failed)";
    t.add_row({util::fmt(r), util::fmt(mflops[r]),
               util::fmt(before.counts[r]), after});
  }
  t.print(std::cout);

  std::cout << "\nfailed ranks : ";
  for (const int r : result.failed_ranks) std::cout << r << ' ';
  std::cout << "\nrecoveries   : " << result.recoveries << "\n";

  // The acid test: the recovered run must match the serial reference bit
  // for bit.
  util::MatrixD reference = grid;
  for (int it = 0; it < iterations; ++it)
    reference = apps::jacobi_sweep(reference);
  const double diff = util::max_abs_diff(result.grid, reference);
  std::cout << "max |recovered - serial| = " << diff
            << (diff == 0.0 ? "  (bit-identical)" : "  (MISMATCH!)") << "\n";
  return diff == 0.0 ? 0 : 1;
}
