// The full loop, for real: a distributed Jacobi solver on the mpp runtime
// (threads as emulated heterogeneous ranks) whose band sizes are adapted
// between epochs by the online rebalancer, using only the wall-clock
// timings each epoch produces. No models are built offline; the schedule
// converges from an even split toward speed-proportional bands.
//
// Build & run:  ./examples/adaptive_distributed
#include <iostream>

#include "balance/rebalancer.hpp"
#include "linalg/kernels.hpp"
#include "mpp/distributed_stencil.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace fpm;
  const std::int64_t rows = 1200, cols = 1200;
  const std::vector<int> multipliers{1, 2, 5};  // emulated machine speeds
  const int p = static_cast<int>(multipliers.size());
  const int epochs = 8;
  const int sweeps_per_epoch = 3;

  balance::OnlineModelOptions model;
  model.min_size = 1.0;
  model.max_size = static_cast<double>(rows * cols);
  balance::RebalancerOptions policy;
  policy.warmup_iterations = 0;
  policy.cooldown_iterations = 0;
  policy.imbalance_threshold = 0.10;
  balance::Rebalancer rebalancer(static_cast<std::size_t>(p), rows, model,
                                 policy);

  util::MatrixD grid = linalg::random_matrix(rows, cols, 1);
  util::Table t("epochs", {"epoch", "rows_per_rank", "epoch_seconds",
                           "rebalanced"});
  double total = 0.0;
  for (int e = 0; e < epochs; ++e) {
    const core::Distribution d = rebalancer.distribution();  // copy: the
    // rebalancer may change its distribution inside step() below.
    util::Timer timer;
    const mpp::DistributedStencilResult result =
        mpp::distributed_jacobi(grid, d.counts, sweeps_per_epoch, multipliers);
    const double wall = timer.seconds();
    total += wall;
    grid = result.grid;  // continue from the evolved field

    // Feed the per-rank kernel times back; sizes are cells, time is what
    // the rank actually measured this epoch.
    std::vector<double> cell_seconds(p);
    for (int r = 0; r < p; ++r) cell_seconds[r] = result.compute_seconds[r];
    const bool moved = rebalancer.step(cell_seconds);

    std::string layout;
    for (int r = 0; r < p; ++r)
      layout += (r ? "/" : "") + util::fmt(d.counts[r]);
    t.add_row({util::fmt(e), layout, util::fmt(wall, 3),
               moved ? "yes" : "no"});
  }
  t.print(std::cout);
  std::cout << "\ntotal " << util::fmt(total, 2) << " s across " << epochs
            << " epochs; final layout "
            << rebalancer.distribution().counts[0] << "/"
            << rebalancer.distribution().counts[1] << "/"
            << rebalancer.distribution().counts[2]
            << " rows (emulated speeds 1 : 1/2 : 1/5).\n";
  std::cout << "Numerics stay exact throughout: every epoch's grid is "
               "bit-identical to serial sweeps regardless of the layout.\n";
  return 0;
}
