// Really-distributed heterogeneous matrix multiplication: threads act as
// ranks of an emulated heterogeneous cluster (work multipliers slow some
// ranks down), the functional model is measured from real runs, and the
// resulting distribution is executed with the ring algorithm on the mpp
// runtime. Wall-clock numbers here are real measurements, not simulation.
//
// Build & run:  ./examples/distributed_real
#include <iostream>
#include <numeric>

#include "core/fpm.hpp"
#include "linalg/kernels.hpp"
#include "mpp/distributed_mm.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace fpm;
  const std::int64_t n = 192;
  // Emulated cluster: rank 0 at full speed, rank 1 3x slower, rank 2 6x.
  const std::vector<int> multipliers{1, 3, 6};
  const int p = static_cast<int>(multipliers.size());

  // --- Measure each emulated machine: one timed slice multiplication. ---
  // Speed in rows/second for a fixed n; a constant model per rank is
  // enough here because the emulation has no memory hierarchy (on real
  // machines one would use fpmtool measure / the trisection builder).
  const util::MatrixD a = linalg::random_matrix(n, n, 1);
  const util::MatrixD b = linalg::random_matrix(n, n, 2);
  std::vector<double> rank_speed(p);
  for (int r = 0; r < p; ++r) {
    const util::MatrixD probe = a.slice_rows(0, 32);
    util::Timer timer;
    for (int k = 0; k < multipliers[r]; ++k) {
      const util::MatrixD out = linalg::matmul_abt_naive(probe, b);
      if (out(0, 0) == 42.424242) std::cout << "";  // keep the work alive
    }
    rank_speed[r] = 32.0 / timer.seconds();
  }

  // --- Plan: rows proportional to the measured speeds. ---
  const core::Distribution plan = core::partition_single_number(
      n, rank_speed);
  const core::Distribution even =
      core::partition_even(n, static_cast<std::size_t>(p));

  util::Table t("rows per rank", {"rank", "slowdown", "planned", "even"});
  for (int r = 0; r < p; ++r)
    t.add_row({util::fmt(r), util::fmt(multipliers[r]),
               util::fmt(plan.counts[r]), util::fmt(even.counts[r])});
  t.print(std::cout);

  // --- Execute both distributions for real and compare. ---
  const auto run = [&](const core::Distribution& d) {
    util::Timer timer;
    const mpp::DistributedMmResult result =
        mpp::distributed_mm_abt(a, b, d.counts, multipliers);
    const double wall = timer.seconds();
    const double check =
        util::max_abs_diff(result.c, linalg::matmul_abt_naive(a, b));
    return std::pair{wall, check};
  };
  const auto [t_plan, err_plan] = run(plan);
  const auto [t_even, err_even] = run(even);

  std::cout << "\nreal wall time, speed-proportional rows : "
            << util::fmt(t_plan, 3) << " s (max err " << err_plan << ")\n";
  std::cout << "real wall time, even rows               : "
            << util::fmt(t_even, 3) << " s (max err " << err_even << ")\n";
  std::cout << "measured speedup                        : "
            << util::fmt(t_even / t_plan, 2) << "x\n";
  return 0;
}
