// Pattern search over a large document corpus — the paper's first
// motivating workload. Documents are assigned as contiguous runs with the
// weighted partitioner, so each machine's byte load matches its functional
// speed at that load.
//
// Build & run:  ./examples/text_search
#include <iostream>

#include "apps/textsearch.hpp"
#include "simcluster/presets.hpp"
#include "util/table.hpp"

int main() {
  using namespace fpm;
  auto cluster = sim::make_table2_cluster();
  const sim::ClusterModels models =
      sim::build_cluster_models(cluster, sim::kMatMul);

  const std::string pattern = "heterogeneous";
  const apps::Corpus corpus = apps::make_corpus(800, 50000, pattern, 2004);
  std::cout << "Corpus: " << corpus.documents.size() << " documents, "
            << corpus.total_bytes() / 1024 << " KiB total\n\n";

  const apps::SearchPlan plan = apps::plan_search(models.list(), corpus);
  util::Table t("document ranges", {"machine", "documents", "KiB"});
  for (std::size_t i = 0; i < cluster.size(); ++i)
    t.add_row({cluster.machine(i).spec.name,
               util::fmt(plan.boundaries[i + 1] - plan.boundaries[i]),
               util::fmt(plan.bytes[i] / 1024.0, 0)});
  t.print(std::cout);

  const std::size_t hits = apps::run_search(corpus, plan, pattern);
  std::size_t serial = 0;
  for (const std::string& d : corpus.documents)
    serial += apps::count_occurrences(d, pattern);
  std::cout << "\n'" << pattern << "' found " << hits
            << " times (serial scan agrees: " << (hits == serial ? "yes" : "NO")
            << ")\n";
  std::cout << "simulated parallel scan time: "
            << util::fmt(apps::simulate_search_seconds(cluster, sim::kMatMul,
                                                       plan, false),
                         4)
            << " s\n";
  return 0;
}
