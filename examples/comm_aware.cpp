// Communication-aware partitioning (the extension module): on a slow
// switched network the optimal distribution is no longer purely
// compute-proportional — the root, which pays no transfer cost, should take
// a larger share. This example sweeps the network speed and shows the
// crossover.
//
// Build & run:  ./examples/comm_aware
#include <iostream>

#include "comm/model.hpp"
#include "core/fpm.hpp"
#include "simcluster/presets.hpp"
#include "util/table.hpp"

int main() {
  using namespace fpm;
  auto cluster = sim::make_table2_cluster();
  const sim::ClusterModels models =
      sim::build_cluster_models(cluster, sim::kMatMul);
  const core::SpeedList speeds = models.list();

  const std::int64_t n = 30'000'000;
  comm::CommAwareProblem prob;
  prob.root = 2;  // X3, the big Xeon server, holds the data
  prob.bytes_per_element = 8.0;
  prob.flops_per_element = 100.0;

  util::Table t("comm-aware partitioning vs network speed (root = X3)",
                {"network", "compute_only_s", "comm_aware_s",
                 "root_share_pct"});
  const struct {
    const char* name;
    double rate;
  } nets[] = {{"10 Gbit", 1.25e9}, {"1 Gbit", 1.25e8}, {"100 Mbit", 1.25e7},
              {"10 Mbit", 1.25e6}};
  for (const auto& net : nets) {
    const comm::CommModel model =
        comm::CommModel::uniform(speeds.size(), {1e-4, net.rate});
    const core::Distribution naive = core::partition(speeds, n).distribution;
    const auto aware = comm::partition_comm_aware(speeds, n, model, prob);
    t.add_row(
        {net.name,
         util::fmt(comm::serialized_makespan_seconds(speeds, naive, model,
                                                     prob),
                   2),
         util::fmt(comm::serialized_makespan_seconds(
                       speeds, aware.distribution, model, prob),
                   2),
         util::fmt(100.0 *
                       static_cast<double>(aware.distribution.counts[prob.root]) /
                       static_cast<double>(n),
                   1)});
  }
  t.print(std::cout);
  std::cout << "\nAs the network slows, the comm-aware plan concentrates "
               "work at the root.\nIncorporating communication cost is the "
               "paper's stated future work (its Section 1);\nthis module is "
               "fpmlib's implementation of that extension.\n";
  return 0;
}
