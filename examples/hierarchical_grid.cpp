// Hierarchical partitioning across sites of a computational grid: each
// site is summarized by an exact aggregate speed function; the top level
// distributes across sites and each site distributes locally. The flat
// optimum is reproduced without any site ever sharing its per-machine
// models.
//
// Build & run:  ./examples/hierarchical_grid
#include <iostream>

#include "core/fpm.hpp"
#include "simcluster/presets.hpp"
#include "util/table.hpp"

int main() {
  using namespace fpm;
  // Two sites: the Table-2 lab (12 machines) and a "remote" site made of
  // four downscaled clones (an older partner cluster).
  auto cluster = sim::make_table2_cluster();
  const sim::ClusterModels lab = sim::build_cluster_models(cluster, sim::kMatMul);
  std::vector<std::shared_ptr<const core::SpeedFunction>> remote_owned;
  for (int i = 0; i < 4; ++i)
    remote_owned.push_back(std::make_shared<core::ScaledSpeed>(
        std::make_shared<core::PiecewiseLinearSpeed>(lab.curves[i]), 0.4));

  std::vector<core::SpeedList> sites(2);
  for (const auto& c : lab.curves) sites[0].push_back(&c);
  for (const auto& c : remote_owned) sites[1].push_back(c.get());

  const std::int64_t n = 500'000'000;
  const core::HierarchicalResult hier =
      core::partition_hierarchical(sites, n);

  util::Table t("work per site", {"site", "machines", "elements", "share_pct"});
  const char* names[] = {"lab (Table 2)", "remote (4 old nodes)"};
  for (std::size_t g = 0; g < sites.size(); ++g)
    t.add_row({names[g], util::fmt(sites[g].size()),
               util::fmt(hier.group_counts[g]),
               util::fmt(100.0 * static_cast<double>(hier.group_counts[g]) /
                             static_cast<double>(n),
                         1)});
  t.print(std::cout);

  // Compare against the flat partition over all 16 machines.
  core::SpeedList flat = sites[0];
  flat.insert(flat.end(), sites[1].begin(), sites[1].end());
  const core::PartitionResult flat_result = core::partition(flat, n);
  core::Distribution hier_as_flat;
  hier_as_flat.counts = hier.flatten();
  std::cout << "\nmakespan, hierarchical : "
            << util::fmt(core::makespan(flat, hier_as_flat), 1) << "\n";
  std::cout << "makespan, flat         : "
            << util::fmt(core::makespan(flat, flat_result.distribution), 1)
            << "\n";
  std::cout << "The two coincide: the aggregate speed function is exact, so "
               "sites can plan\nlocally without exchanging per-machine "
               "models.\n";
  return 0;
}
