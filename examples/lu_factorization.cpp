// LU factorization with the Variable Group Block distribution on the
// Table-2 network: compute the distribution from functional models, inspect
// the group structure (including the slowest-first final group), verify the
// blocked factorization kernel against the unblocked reference on a real
// matrix, and simulate a paper-scale factorization.
//
// Build & run:  ./examples/lu_factorization
#include <iostream>

#include "apps/lu_app.hpp"
#include "apps/vgb.hpp"
#include "linalg/block_lu.hpp"
#include "linalg/kernels.hpp"
#include "simcluster/presets.hpp"
#include "util/table.hpp"

int main() {
  using namespace fpm;

  std::cout << "== LU factorization with Variable Group Block ==\n\n";
  auto cluster = sim::make_table2_cluster();
  const sim::ClusterModels models =
      sim::build_cluster_models(cluster, sim::kLu);

  // --- Real numeric check: blocked LU == unblocked LU, bit for bit. ---
  util::MatrixD m1 = linalg::random_matrix(128, 128, 3);
  util::MatrixD m2 = m1;
  std::vector<std::size_t> p1, p2;
  linalg::lu_factor(m1, p1);
  linalg::block_lu_factor(m2, 32, p2);
  std::cout << "Real 128x128 run: blocked vs unblocked max diff = "
            << util::max_abs_diff(m1, m2) << ", pivots "
            << (p1 == p2 ? "identical" : "DIFFER") << "\n\n";

  // --- The distribution the paper illustrates (Figure 17b). ---
  const std::int64_t n = 20480;
  apps::VgbOptions opts;
  opts.block = 128;
  const apps::VgbDistribution dist =
      apps::variable_group_block(models.list(), n, opts);

  std::cout << "n = " << n << ", block = " << opts.block << ": "
            << dist.total_blocks() << " column blocks in "
            << dist.group_sizes.size() << " groups\n";
  std::cout << "group sizes (blocks):";
  for (const auto g : dist.group_sizes) std::cout << ' ' << g;
  std::cout << "\nfirst group owners  :";
  for (std::int64_t j = 0; j < dist.group_sizes.front(); ++j)
    std::cout << ' ' << cluster.machine(dist.block_owner[j]).spec.name;
  std::cout << "\nlast group owners   :";
  for (std::int64_t j = dist.total_blocks() - dist.group_sizes.back();
       j < dist.total_blocks(); ++j)
    std::cout << ' ' << cluster.machine(dist.block_owner[j]).spec.name;
  std::cout << "  (slowest first, fastest last for end-game balance)\n\n";

  util::Table t("column blocks per machine", {"machine", "blocks"});
  for (std::size_t i = 0; i < cluster.size(); ++i)
    t.add_row({cluster.machine(i).spec.name,
               util::fmt(dist.owned_blocks_from(static_cast<int>(i), 0))});
  t.print(std::cout);

  // --- Simulated execution vs the single-number Group Block. ---
  apps::VgbOptions single = opts;
  single.model = apps::VgbModel::SingleNumber;
  single.reference_n = 2000;
  const auto dist_single = apps::variable_group_block(models.list(), n, single);
  const double tf = apps::simulate_lu_seconds(cluster, sim::kLu, dist, false);
  const double ts =
      apps::simulate_lu_seconds(cluster, sim::kLu, dist_single, false);
  std::cout << "\nsimulated makespan, functional VGB    : " << util::fmt(tf, 0)
            << " s\n";
  std::cout << "simulated makespan, single-number GB  : " << util::fmt(ts, 0)
            << " s\n";
  std::cout << "speedup                               : "
            << util::fmt(ts / tf, 2) << "x\n";
  return 0;
}
