// Two-dimensional rectangular partitioning (the extension sketched in the
// paper's §3.1): tile a 2-D matrix over the Table-2 machines so every
// rectangle's area is proportional to the machine's functional speed, and
// show the communication savings over 1-D strips.
//
// Build & run:  ./examples/rectangular_2d
#include <iostream>

#include "core/rect2d.hpp"
#include "simcluster/presets.hpp"
#include "util/table.hpp"

int main() {
  using namespace fpm;
  auto cluster = sim::make_table2_cluster();
  const sim::ClusterModels models =
      sim::build_cluster_models(cluster, sim::kMatMul);

  const std::int64_t grid = 6000;
  const core::RectPartition part =
      core::partition_rectangles(models.list(), grid, grid);
  core::Rect2dOptions strips_opt;
  strips_opt.force_columns = 1;
  const core::RectPartition strips =
      core::partition_rectangles(models.list(), grid, grid, strips_opt);

  std::cout << "Tiling a " << grid << "x" << grid << " grid over 12 machines ("
            << part.columns << " processor columns chosen)\n\n";
  util::Table t("rectangles", {"machine", "row", "col", "rows", "cols",
                               "area_pct"});
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const core::Rect& r = part.rects[i];
    t.add_row({cluster.machine(i).spec.name, util::fmt(r.row),
               util::fmt(r.col), util::fmt(r.rows), util::fmt(r.cols),
               util::fmt(100.0 * static_cast<double>(r.area()) /
                             static_cast<double>(grid * grid),
                         2)});
  }
  t.print(std::cout);

  std::cout << "\nexact tiling: " << (core::is_exact_tiling(part) ? "yes" : "NO")
            << "\n";
  std::cout << "total half-perimeter (comm proxy): "
            << part.total_half_perimeter() << " vs " << strips.total_half_perimeter()
            << " for 1-D strips ("
            << util::fmt(100.0 * (1.0 -
                                  static_cast<double>(part.total_half_perimeter()) /
                                      static_cast<double>(
                                          strips.total_half_perimeter())),
                         1)
            << "% less data on the wire)\n";
  return 0;
}
